// Package server turns the repo's single-caller SVT library types into a
// sharded, multi-tenant session service: many analysts each hold an
// interactive session (svt.Sparse, a variants algorithm, or a pmw
// mediator) against private data, all behind one JSON-over-HTTP API with
// per-session privacy-budget accounting.
//
// The SessionManager stripes sessions over N shards (hash of the session
// ID → shard, one mutex and map per shard) so concurrent traffic on
// different sessions never contends on a global lock; a background
// janitor expires idle sessions after their TTL. Each session serializes
// its own mechanism — the library types are not concurrency-safe — so
// correctness of the paper's interaction model is preserved while
// independent sessions scale across cores.
//
// Only differentially private mechanisms are servable. The broken
// historical variants (Roth11, Stoddard, Chen, GPTT) exist in this repo
// to be audited, not deployed, and the server refuses to instantiate
// them.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/mech"
	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

// ManagerConfig configures a SessionManager. The zero value is usable:
// DefaultShards shards, DefaultTTL idle expiry, DefaultSweepInterval
// janitor cadence, no session cap.
type ManagerConfig struct {
	// Shards is the number of lock stripes; 0 means DefaultShards. More
	// shards means less cross-session lock contention.
	Shards int
	// DefaultTTL is the idle time-to-live applied to sessions that do not
	// request one; 0 means DefaultTTL.
	DefaultTTL time.Duration
	// MaxTTL caps per-session TTL requests; 0 means 24h.
	MaxTTL time.Duration
	// SweepInterval is how often the janitor scans for expired sessions;
	// 0 means DefaultSweepInterval. Expired sessions are also collected
	// lazily on access, so the sweep only bounds memory of abandoned
	// sessions.
	SweepInterval time.Duration
	// MaxSessions caps the number of live sessions; 0 means unlimited.
	// Create returns ErrTooManySessions at the cap.
	MaxSessions int
	// Store journals every budget-mutating session transition and replays
	// it on restart, so spent privacy budget survives a crash. nil means no
	// persistence (the historical purely-in-memory behavior, zero
	// overhead). Use Open when a Store is configured: recovery can fail.
	Store store.SessionStore
	// SnapshotInterval is how often the manager compacts the journal with a
	// full-state snapshot; 0 means DefaultSnapshotInterval, negative
	// disables periodic snapshots. Ignored without a Store.
	SnapshotInterval time.Duration
	// Registry is the mechanism registry sessions are built from; nil
	// means mech.Default (every built-in mechanism). The manager captures
	// the registered set at Open time for its per-mechanism counters, so
	// register custom mechanisms before opening.
	Registry *mech.Registry
	// Telemetry, when set, receives the manager's and the store's metric
	// families (see telemetry.go) and enables sampled query-latency
	// histograms. nil means no instrumentation and zero overhead. The
	// registry must not already hold svt_* manager families — one
	// registry serves one manager.
	Telemetry *telemetry.Registry
	// Tracer, when set, lets trace-sampled requests (threaded in through
	// QueryTraced's span) pick up the store's flush-phase breakdown: the
	// manager attaches a store.Instrumenter even without a Telemetry
	// registry so the journal span gains gather/write/sync children. Use
	// the same Tracer in APIConfig. nil with nil Telemetry means no
	// instrumenter is attached at all.
	Tracer *trace.Tracer
	// MaxTenantSeries caps per-tenant label cardinality in the telemetry
	// collectors: past this many distinct tenants, further tenants
	// aggregate into the OtherTenant series. 0 means
	// DefaultMaxTenantSeries.
	MaxTenantSeries int
	// JournalDeadline bounds how long a request waits for its journal
	// append before failing with the typed, retryable ErrUnavailable
	// (HTTP 503 / wire "unavailable", with Retry-After). 0 disables the
	// deadline: a stalled store stalls the request, the historical
	// behavior. The append itself is never cancelled — see storeAppend
	// for why abandoning the wait keeps budget accounting exact. Ignored
	// without a Store.
	JournalDeadline time.Duration
}

// Defaults for ManagerConfig zero values.
const (
	DefaultShards           = 16
	DefaultTTL              = 10 * time.Minute
	DefaultMaxTTL           = 24 * time.Hour
	DefaultSweepInterval    = 30 * time.Second
	DefaultSnapshotInterval = time.Minute
	DefaultMaxTenantSeries  = 128
)

// OtherTenant is the label value per-tenant metric series aggregate into
// once the tenant-cardinality cap (ManagerConfig.MaxTenantSeries,
// RateLimitConfig.MaxTenantSeries) is reached.
const OtherTenant = "_other"

// ErrTooManySessions is returned by Create when MaxSessions live sessions
// already exist.
var ErrTooManySessions = fmt.Errorf("server: session cap reached")

// shard is one lock stripe: a mutex-guarded slice of the session table
// plus its share of the service counters. Counters are atomics so Stats
// can aggregate without taking any shard lock.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	created atomic.Uint64
	deleted atomic.Uint64
	expired atomic.Uint64
	// queries/positives/halts count answered queries, consumed positive
	// outcomes and halt transitions per mechanism, indexed by the
	// manager's registry-derived mechIndex (fixed at Open time).
	queries   []atomic.Uint64
	positives []atomic.Uint64
	halts     []atomic.Uint64
}

// SessionManager owns all live sessions.
type SessionManager struct {
	shards     []*shard
	defaultTTL time.Duration
	maxTTL     time.Duration
	maxLive    int
	live       atomic.Int64

	// registry is the mechanism registry sessions are built from;
	// mechInfos/mechNames/mechIndex freeze the registered set at Open time
	// so the per-shard query counters stay a lock-free flat array and
	// discovery, stats and create agree on one servable set.
	registry  *mech.Registry
	mechInfos []MechanismInfo
	mechNames []Mechanism
	mechIndex map[Mechanism]int

	// store is the persistence backend; nil means no journaling at all.
	// journalMu orders journal appends against snapshot compaction: every
	// mutate-then-append pair holds the read side; SnapshotNow holds the
	// write side only while it rotates the journal segment and copies the
	// per-session records — the baseline encode and file write happen
	// outside it, concurrent with query traffic. snapMu serializes whole
	// snapshots against each other (the periodic loop vs. an explicit
	// SnapshotNow at shutdown).
	store             store.SessionStore
	journalMu         sync.RWMutex
	snapMu            sync.Mutex
	recoveredSessions int

	// Journal-append deadline machinery (deadline.go): a bounded free
	// list of waiter goroutines, the configured deadline (0 = off), and
	// the svt_journal_deadline_exceeded_total counter.
	journalDeadline  time.Duration
	waiters          chan *journalWaiter
	waitersClosed    atomic.Bool
	deadlineExceeded atomic.Uint64

	// shedHTTP/shedWire count requests load-shed at each serving edge's
	// in-flight cap. They live on the manager — the one object both
	// edges share — so svt_shed_total can be a single family with an
	// edge label on the one shared registry.
	shedHTTP atomic.Uint64
	shedWire atomic.Uint64

	// Snapshot failure accounting, surfaced in Stats: a store that can no
	// longer compact will eventually exhaust its disk, so the operator must
	// see it even though serving continues.
	snapFailures atomic.Uint64
	snapLastErr  atomic.Value // string

	// tel holds the telemetry handles when cfg.Telemetry was set; nil
	// means no instrumentation (and no overhead) anywhere in the manager.
	tel *managerTelemetry
	// storeInst is the instrumenter attached to the store when telemetry
	// or tracing is on; traced requests read its last-flush phase
	// breakdown to build the journal span's store children.
	storeInst *storeTelemetry
	// maxTenantSeries bounds per-tenant label cardinality in tenantAgg.
	maxTenantSeries int
	// snapLastOK is the wall-clock time (unix nanos) of the last
	// successful snapshot, 0 before the first; SnapshotAge derives the
	// staleness surfaced in /healthz and /metrics.
	snapLastOK atomic.Int64

	// logf emits operational warnings; swappable in tests.
	logf func(format string, args ...any)

	janitorStop  chan struct{}
	janitorDone  chan struct{}
	snapshotDone chan struct{}
	closeOnce    sync.Once

	// now is the clock, swappable in tests.
	now func() time.Time
}

// Open builds the shard table, recovers journaled sessions from cfg.Store
// (when one is configured), starts the janitor and the periodic snapshot
// loop, and returns the ready manager. Callers must Close it. Recovery is
// strict: a session whose journaled state cannot be rebuilt fails Open
// rather than silently refreshing its spent privacy budget.
func Open(cfg ManagerConfig) (*SessionManager, error) {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	ttl := cfg.DefaultTTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	maxTTL := cfg.MaxTTL
	if maxTTL <= 0 {
		maxTTL = DefaultMaxTTL
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	sweep := cfg.SweepInterval
	if sweep <= 0 {
		sweep = DefaultSweepInterval
	}
	registry := cfg.Registry
	if registry == nil {
		registry = mech.Default
	}
	m := &SessionManager{
		shards:      make([]*shard, nshards),
		defaultTTL:  ttl,
		maxTTL:      maxTTL,
		maxLive:     cfg.MaxSessions,
		registry:    registry,
		store:       cfg.Store,
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		now:         time.Now,
		logf:        log.Printf,
	}
	m.maxTenantSeries = cfg.MaxTenantSeries
	if m.maxTenantSeries <= 0 {
		m.maxTenantSeries = DefaultMaxTenantSeries
	}
	if m.store != nil && cfg.JournalDeadline > 0 {
		m.journalDeadline = cfg.JournalDeadline
		m.waiters = make(chan *journalWaiter, 64)
	}
	m.captureMechanisms()
	for i := range m.shards {
		m.shards[i] = &shard{
			sessions:  make(map[string]*Session),
			queries:   make([]atomic.Uint64, len(m.mechNames)),
			positives: make([]atomic.Uint64, len(m.mechNames)),
			halts:     make([]atomic.Uint64, len(m.mechNames)),
		}
	}
	// The store instrumenter serves two consumers: telemetry histograms
	// and the tracer's flush-phase breakdown. Build it when either is on.
	var instrumented store.Instrumented
	if m.store != nil && (cfg.Telemetry != nil || cfg.Tracer != nil) {
		if inst, ok := m.store.(store.Instrumented); ok {
			m.storeInst = &storeTelemetry{}
			instrumented = inst
		}
	}
	if cfg.Telemetry != nil {
		// Register before recovery so the store instrumenter is attached
		// while the open-time snapshot's appends flow (recovery itself ran
		// in the store's constructor; its measurement is replayed onto the
		// instrumenter at attach).
		m.tel = m.registerManagerTelemetry(cfg.Telemetry)
	}
	if instrumented != nil {
		instrumented.SetInstrumenter(m.storeInst)
	}
	if m.store != nil {
		if err := m.recoverSessions(); err != nil {
			return nil, err
		}
		// Collapse the replayed journal into a fresh snapshot immediately,
		// so repeated crashes cannot grow the journal without bound.
		if err := m.SnapshotNow(); err != nil {
			return nil, err
		}
	}
	go m.janitor(sweep)
	if m.store != nil && cfg.SnapshotInterval >= 0 {
		interval := cfg.SnapshotInterval
		if interval == 0 {
			interval = DefaultSnapshotInterval
		}
		m.snapshotDone = make(chan struct{})
		go m.snapshotLoop(interval)
	}
	return m, nil
}

// NewSessionManager is the store-less constructor kept for in-memory
// callers: it is Open with the guarantee that construction cannot fail.
// It panics if recovery fails, which only a configured Store can cause —
// prefer Open when cfg.Store is set.
func NewSessionManager(cfg ManagerConfig) *SessionManager {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Close stops the janitor and the snapshot loop. Live sessions stay
// queryable; Close exists so tests and graceful shutdown do not leak
// goroutines. It does not close the store — the store's owner does that
// after Close returns, so every journaled event is flushed exactly once.
func (m *SessionManager) Close() {
	m.closeOnce.Do(func() {
		close(m.janitorStop)
		<-m.janitorDone
		if m.snapshotDone != nil {
			<-m.snapshotDone
		}
		m.closeWaiters()
	})
}

// Recovered returns how many sessions the manager rebuilt from its store at
// Open time.
func (m *SessionManager) Recovered() int { return m.recoveredSessions }

// janitor periodically sweeps expired sessions.
func (m *SessionManager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.Sweep()
		}
	}
}

// Sweep removes every expired session and returns how many it removed.
// The janitor calls it on its interval; it is exported so operators and
// tests can force a pass. Expiries are journaled so recovery does not
// resurrect collected sessions (a lost expire event is benign: the session
// reappears with its budget accounting intact and re-expires by TTL).
func (m *SessionManager) Sweep() int {
	if m.store != nil {
		m.journalMu.RLock()
		defer m.journalMu.RUnlock()
	}
	now := m.now()
	removed := 0
	for _, sh := range m.shards {
		// Collect candidates under the read lock (expiry deadlines are
		// atomics), then confirm under the write lock.
		sh.mu.RLock()
		var stale []*Session
		for _, s := range sh.sessions {
			if s.expired(now) {
				stale = append(stale, s)
			}
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		sh.mu.Lock()
		var collected []string
		for _, s := range stale {
			if cur, ok := sh.sessions[s.id]; ok && cur == s && s.expired(now) {
				delete(sh.sessions, s.id)
				sh.expired.Add(1)
				m.live.Add(-1)
				removed++
				collected = append(collected, s.id)
			}
		}
		sh.mu.Unlock()
		// Journal after releasing the shard lock: an append can fsync, and
		// queries on this shard must not stall behind the janitor. The
		// shard's expiries go down as one atomic batch — one durability
		// round-trip instead of one per session.
		if m.store != nil && len(collected) > 0 {
			evs := make([]store.Event, len(collected))
			for i, id := range collected {
				evs[i] = store.Event{Kind: evExpire, ID: id}
			}
			_ = store.AppendAll(m.store, evs)
		}
	}
	return removed
}

// servedNames renders the frozen mechanism set for error messages.
func (m *SessionManager) servedNames() string {
	names := make([]string, len(m.mechNames))
	for i, n := range m.mechNames {
		names[i] = string(n)
	}
	return strings.Join(names, ", ")
}

// shardFor maps a session ID to its stripe by FNV-1a hash, inlined so the
// per-request routing allocates nothing (hash.Hash32 escapes; this loop
// does not). Only the first 16 bytes feed the hash: server-issued IDs are
// random hex, whose prefix alone carries far more entropy than any shard
// count needs, and shard placement is purely an in-process concern.
func (m *SessionManager) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	n := len(id)
	if n > 16 {
		n = 16
	}
	h := uint32(offset32)
	for i := 0; i < n; i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return m.shards[h%uint32(len(m.shards))]
}

// newID returns a fresh 128-bit random session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create validates p, builds the mechanism, registers the session under a
// fresh random ID and journals it. A session whose create event cannot be
// journaled is rolled back and never exposed.
func (m *SessionManager) Create(p CreateParams) (*Session, error) {
	// Reserve the slot first so concurrent Creates cannot overshoot the
	// cap between a check and an increment.
	if n := m.live.Add(1); m.maxLive > 0 && n > int64(m.maxLive) {
		m.live.Add(-1)
		return nil, ErrTooManySessions
	}
	if m.store != nil {
		m.journalMu.RLock()
		defer m.journalMu.RUnlock()
	}
	s, sh, err := m.create(p)
	if err != nil {
		m.live.Add(-1)
		return nil, err
	}
	if m.store != nil {
		if err := m.journalCreate(s); err != nil {
			sh.mu.Lock()
			delete(sh.sessions, s.id)
			sh.mu.Unlock()
			m.live.Add(-1)
			if errors.Is(err, ErrUnavailable) {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrStoreAppend, err)
		}
	}
	sh.created.Add(1)
	return s, nil
}

// create builds and registers the session; Create owns the live count.
func (m *SessionManager) create(p CreateParams) (*Session, *shard, error) {
	ttl := m.defaultTTL
	if p.TTLSeconds < 0 || math.IsNaN(p.TTLSeconds) {
		return nil, nil, fmt.Errorf("server: ttlSeconds must be non-negative, got %v", p.TTLSeconds)
	}
	if p.TTLSeconds > 0 {
		// Compare in float seconds: converting huge or +Inf values to a
		// Duration first would overflow int64 and wrap negative.
		if p.TTLSeconds >= m.maxTTL.Seconds() {
			ttl = m.maxTTL
		} else {
			ttl = time.Duration(p.TTLSeconds * float64(time.Second))
		}
	}
	id, err := newID()
	if err != nil {
		return nil, nil, err
	}
	// Serve only the mechanism set frozen at Open: a factory registered
	// later would be buildable via the live registry but invisible to the
	// per-mechanism counters and the discovery endpoint.
	idx, served := m.mechIndex[p.Mechanism]
	if !served {
		return nil, nil, fmt.Errorf("server: unknown mechanism %q (serving: %s)", p.Mechanism, m.servedNames())
	}
	s, err := newSession(m.registry, id, p, ttl, m.now())
	if err != nil {
		return nil, nil, err
	}
	s.mechIdx = idx
	sh := m.shardFor(id)
	s.home = sh
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		// 128 random bits colliding means the RNG is broken, not unlucky.
		return nil, nil, fmt.Errorf("server: session id collision")
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	return s, sh, nil
}

// Get returns the live session with the given ID, refreshing its idle
// deadline. An expired session is collected on the spot and reported as
// absent.
func (m *SessionManager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	now := m.now()
	if s.expired(now) {
		sh.mu.Lock()
		collected := false
		if cur, stillThere := sh.sessions[id]; stillThere && cur == s && s.expired(now) {
			delete(sh.sessions, id)
			sh.expired.Add(1)
			m.live.Add(-1)
			collected = true
		}
		sh.mu.Unlock()
		if collected && m.store != nil {
			// Best-effort, outside journalMu (Query already holds its read
			// side, and RWMutex read locks must not nest). A lost expire
			// event only resurrects the session on restart with its budget
			// accounting intact; it then re-expires by TTL.
			_ = m.storeAppend(store.Event{Kind: evExpire, ID: id})
		}
		return nil, false
	}
	s.touch(now)
	return s, true
}

// Delete removes the session and reports whether it existed. A failed
// delete-event append is tolerated: the worst case is a deleted session
// resurrecting after a restart with its budget accounting intact, which the
// TTL janitor then collects (the failure is visible in the store's Health).
func (m *SessionManager) Delete(id string) bool {
	if m.store != nil {
		m.journalMu.RLock()
		defer m.journalMu.RUnlock()
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	if m.store != nil {
		_ = m.storeAppend(store.Event{Kind: evDelete, ID: id})
	}
	sh.deleted.Add(1)
	m.live.Add(-1)
	return true
}

// Len returns the number of live sessions (including expired ones the
// janitor has not collected yet).
func (m *SessionManager) Len() int { return int(m.live.Load()) }

// Shards returns the number of lock stripes.
func (m *SessionManager) Shards() int { return len(m.shards) }

// QueryTrace carries per-request observability through the manager: the
// HTTP layer hands one in (from its pooled scratch, so tracing allocates
// nothing) and the manager fills in what only it can see — the session's
// mechanism and how long the journal append (the WAL flush wait) took.
// The trace ID travels with it into whatever log line the request earns.
type QueryTrace struct {
	// TraceID is the request's correlation ID (X-Request-Id, or generated
	// at log time when the client sent none).
	TraceID string
	// Mechanism is the queried session's mechanism, filled by the manager.
	Mechanism Mechanism
	// JournalNanos is how long the batch's journal append took — the
	// store's group-commit/flush wait — 0 when the manager has no store.
	JournalNanos int64
	// Span is the request's root span when the request is trace-sampled,
	// nil otherwise (every span operation is nil-safe, so the manager
	// threads it unconditionally). The manager hangs its own child —
	// mechanism answer, journal wait, store flush phases — under it.
	Span *trace.Span
}

// exemplarID returns the trace ID a sampled latency observation should
// carry as its exemplar: "" unless the request is trace-sampled.
func exemplarID(tr *QueryTrace) string {
	if tr == nil {
		return ""
	}
	return tr.Span.TraceIDString()
}

// Query routes a batch to the session, journals the released progress and
// maintains the per-mechanism counters. It is the call sites' single entry
// point so HTTP and direct (in-process) users share the accounting. When
// the journal append fails the whole response is withheld (ErrStoreAppend):
// an analyst must never observe a DP release the store could forget.
func (m *SessionManager) Query(id string, items []QueryItem) (BatchResult, error) {
	return m.queryInto(id, items, nil, nil)
}

// QueryInto is Query writing its results into dst's backing array (dst may
// be nil): the HTTP layer recycles result slices across requests through
// it. Callers that retain the results must pass nil.
func (m *SessionManager) QueryInto(id string, items []QueryItem, dst []QueryResult) (BatchResult, error) {
	return m.queryInto(id, items, dst, nil)
}

// QueryTraced is QueryInto additionally filling tr (which must be
// non-nil) with the request's trace details; the extra clock reads around
// the journal append make it marginally more expensive than QueryInto,
// which is why slow-query tracing is opt-in.
func (m *SessionManager) QueryTraced(id string, items []QueryItem, dst []QueryResult, tr *QueryTrace) (BatchResult, error) {
	return m.queryInto(id, items, dst, tr)
}

// queryInto is the single query entry point. Per-mechanism counting
// happens inside queryTake (under the session lock, where the deltas are
// exact); this level adds journaling, the sampled latency histogram and
// trace capture.
func (m *SessionManager) queryInto(id string, items []QueryItem, dst []QueryResult, tr *QueryTrace) (BatchResult, error) {
	start, sampled := m.tel.sampleQueryStart()
	s, ok := m.Get(id)
	if !ok {
		return BatchResult{}, ErrSessionNotFound
	}
	// Every span call below is nil-safe: when the request is not
	// trace-sampled (tr nil or tr.Span nil) ms stays nil and the whole
	// block costs a handful of nil checks and zero allocations.
	var ms *trace.Span
	if tr != nil {
		tr.Mechanism = s.mech
		ms = tr.Span.StartChild("manager")
		ms.SetAttr("mechanism", string(s.mech))
	}
	if m.store == nil {
		as := ms.StartChild("answer")
		res, err := s.queryInto(items, dst)
		as.End()
		ms.End()
		if sampled && err == nil {
			m.observeQuery(s, start, exemplarID(tr))
		}
		return res, err
	}
	m.journalMu.RLock()
	as := ms.StartChild("answer")
	res, d, err := s.queryTake(items, dst, true)
	as.End()
	var jerr error
	if tr != nil {
		js := ms.StartChild("journal.wait")
		j0 := telemetry.Now()
		jerr = m.journalProgress(s, d)
		tr.JournalNanos = telemetry.Now() - j0
		js.SetAttrInt("answered", int64(d.answered))
		js.End()
		if jerr == nil && js != nil && m.storeInst != nil {
			// Under SyncAlways the flush observed most recently by the
			// instrumenter is the one this request just waited on; break
			// the journal wait into its gather/write/sync phases.
			m.storeInst.attachFlushPhases(js)
		}
	} else {
		jerr = m.journalProgress(s, d)
	}
	m.journalMu.RUnlock()
	ms.End()
	if jerr != nil {
		return BatchResult{}, jerr
	}
	if sampled && err == nil {
		m.observeQuery(s, start, exemplarID(tr))
	}
	return res, err
}

// observeQuery records one sampled query-latency observation on the
// session's mechanism histogram. exemplar is the trace ID to attach to
// the observation ("" for none), linking the histogram bucket to a
// retrievable trace.
func (m *SessionManager) observeQuery(s *Session, start int64, exemplar string) {
	if s.mechIdx >= 0 && s.mechIdx < len(m.tel.queryLatency) {
		m.tel.queryLatency[s.mechIdx].ObserveNExemplar(telemetry.Seconds(telemetry.Now()-start), querySamplePeriod, exemplar)
	}
}

// SnapshotAge returns how long ago the last successful snapshot
// finished. ok is false before the first success (including managers
// that never snapshot — no store, or no snapshot policy), so callers
// can distinguish "never" from "just now".
func (m *SessionManager) SnapshotAge() (time.Duration, bool) {
	last := m.snapLastOK.Load()
	if last == 0 {
		return 0, false
	}
	age := m.now().Sub(time.Unix(0, last))
	if age < 0 {
		age = 0
	}
	return age, true
}

// HealthStatus reports whether the manager is fit to serve durable
// traffic, with a reason when it is not: a store in a failed state
// refuses every journal append (all mutating requests 503), and a failed
// last snapshot means the journal can no longer compact. /healthz
// degrades to 503 on either, so load balancers drain the node.
func (m *SessionManager) HealthStatus() (bool, string) {
	if h, ok := m.store.(store.Healther); ok {
		if hs := h.Health(); hs.Broken {
			return false, "store in failed state: " + hs.LastError
		}
	}
	if msg, ok := m.snapLastErr.Load().(string); ok && msg != "" {
		return false, "last snapshot failed: " + msg
	}
	return true, ""
}

// ErrSessionNotFound is returned by Query for an unknown or expired ID.
var ErrSessionNotFound = fmt.Errorf("server: session not found")
