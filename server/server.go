// Package server turns the repo's single-caller SVT library types into a
// sharded, multi-tenant session service: many analysts each hold an
// interactive session (svt.Sparse, a variants algorithm, or a pmw
// mediator) against private data, all behind one JSON-over-HTTP API with
// per-session privacy-budget accounting.
//
// The SessionManager stripes sessions over N shards (hash of the session
// ID → shard, one mutex and map per shard) so concurrent traffic on
// different sessions never contends on a global lock; a background
// janitor expires idle sessions after their TTL. Each session serializes
// its own mechanism — the library types are not concurrency-safe — so
// correctness of the paper's interaction model is preserved while
// independent sessions scale across cores.
//
// Only differentially private mechanisms are servable. The broken
// historical variants (Roth11, Stoddard, Chen, GPTT) exist in this repo
// to be audited, not deployed, and the server refuses to instantiate
// them.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ManagerConfig configures a SessionManager. The zero value is usable:
// DefaultShards shards, DefaultTTL idle expiry, DefaultSweepInterval
// janitor cadence, no session cap.
type ManagerConfig struct {
	// Shards is the number of lock stripes; 0 means DefaultShards. More
	// shards means less cross-session lock contention.
	Shards int
	// DefaultTTL is the idle time-to-live applied to sessions that do not
	// request one; 0 means DefaultTTL.
	DefaultTTL time.Duration
	// MaxTTL caps per-session TTL requests; 0 means 24h.
	MaxTTL time.Duration
	// SweepInterval is how often the janitor scans for expired sessions;
	// 0 means DefaultSweepInterval. Expired sessions are also collected
	// lazily on access, so the sweep only bounds memory of abandoned
	// sessions.
	SweepInterval time.Duration
	// MaxSessions caps the number of live sessions; 0 means unlimited.
	// Create returns ErrTooManySessions at the cap.
	MaxSessions int
}

// Defaults for ManagerConfig zero values.
const (
	DefaultShards        = 16
	DefaultTTL           = 10 * time.Minute
	DefaultMaxTTL        = 24 * time.Hour
	DefaultSweepInterval = 30 * time.Second
)

// ErrTooManySessions is returned by Create when MaxSessions live sessions
// already exist.
var ErrTooManySessions = fmt.Errorf("server: session cap reached")

// shard is one lock stripe: a mutex-guarded slice of the session table
// plus its share of the service counters. Counters are atomics so Stats
// can aggregate without taking any shard lock.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	created atomic.Uint64
	deleted atomic.Uint64
	expired atomic.Uint64
	queries [len(mechanisms)]atomic.Uint64
}

// SessionManager owns all live sessions.
type SessionManager struct {
	shards     []*shard
	defaultTTL time.Duration
	maxTTL     time.Duration
	maxLive    int
	live       atomic.Int64

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewSessionManager builds the shard table and starts the janitor.
// Callers must Close the manager to stop the janitor goroutine.
func NewSessionManager(cfg ManagerConfig) *SessionManager {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	ttl := cfg.DefaultTTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	maxTTL := cfg.MaxTTL
	if maxTTL <= 0 {
		maxTTL = DefaultMaxTTL
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	sweep := cfg.SweepInterval
	if sweep <= 0 {
		sweep = DefaultSweepInterval
	}
	m := &SessionManager{
		shards:      make([]*shard, nshards),
		defaultTTL:  ttl,
		maxTTL:      maxTTL,
		maxLive:     cfg.MaxSessions,
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		now:         time.Now,
	}
	for i := range m.shards {
		m.shards[i] = &shard{sessions: make(map[string]*Session)}
	}
	go m.janitor(sweep)
	return m
}

// Close stops the janitor. Live sessions stay queryable; Close exists so
// tests and graceful shutdown do not leak the goroutine.
func (m *SessionManager) Close() {
	m.closeOnce.Do(func() {
		close(m.janitorStop)
		<-m.janitorDone
	})
}

// janitor periodically sweeps expired sessions.
func (m *SessionManager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.Sweep()
		}
	}
}

// Sweep removes every expired session and returns how many it removed.
// The janitor calls it on its interval; it is exported so operators and
// tests can force a pass.
func (m *SessionManager) Sweep() int {
	now := m.now()
	removed := 0
	for _, sh := range m.shards {
		// Collect candidates under the read lock (expiry deadlines are
		// atomics), then confirm under the write lock.
		sh.mu.RLock()
		var stale []*Session
		for _, s := range sh.sessions {
			if s.expired(now) {
				stale = append(stale, s)
			}
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		sh.mu.Lock()
		for _, s := range stale {
			if cur, ok := sh.sessions[s.id]; ok && cur == s && s.expired(now) {
				delete(sh.sessions, s.id)
				sh.expired.Add(1)
				m.live.Add(-1)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// shardFor maps a session ID to its stripe by FNV-1a hash.
func (m *SessionManager) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// newID returns a fresh 128-bit random session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create validates p, builds the mechanism and registers the session
// under a fresh random ID.
func (m *SessionManager) Create(p CreateParams) (*Session, error) {
	// Reserve the slot first so concurrent Creates cannot overshoot the
	// cap between a check and an increment.
	if n := m.live.Add(1); m.maxLive > 0 && n > int64(m.maxLive) {
		m.live.Add(-1)
		return nil, ErrTooManySessions
	}
	s, sh, err := m.create(p)
	if err != nil {
		m.live.Add(-1)
		return nil, err
	}
	sh.created.Add(1)
	return s, nil
}

// create builds and registers the session; Create owns the live count.
func (m *SessionManager) create(p CreateParams) (*Session, *shard, error) {
	ttl := m.defaultTTL
	if p.TTLSeconds < 0 || math.IsNaN(p.TTLSeconds) {
		return nil, nil, fmt.Errorf("server: ttlSeconds must be non-negative, got %v", p.TTLSeconds)
	}
	if p.TTLSeconds > 0 {
		// Compare in float seconds: converting huge or +Inf values to a
		// Duration first would overflow int64 and wrap negative.
		if p.TTLSeconds >= m.maxTTL.Seconds() {
			ttl = m.maxTTL
		} else {
			ttl = time.Duration(p.TTLSeconds * float64(time.Second))
		}
	}
	id, err := newID()
	if err != nil {
		return nil, nil, err
	}
	s, err := newSession(id, p, ttl, m.now())
	if err != nil {
		return nil, nil, err
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		// 128 random bits colliding means the RNG is broken, not unlucky.
		return nil, nil, fmt.Errorf("server: session id collision")
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	return s, sh, nil
}

// Get returns the live session with the given ID, refreshing its idle
// deadline. An expired session is collected on the spot and reported as
// absent.
func (m *SessionManager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	now := m.now()
	if s.expired(now) {
		sh.mu.Lock()
		if cur, stillThere := sh.sessions[id]; stillThere && cur == s && s.expired(now) {
			delete(sh.sessions, id)
			sh.expired.Add(1)
			m.live.Add(-1)
		}
		sh.mu.Unlock()
		return nil, false
	}
	s.touch(now)
	return s, true
}

// Delete removes the session and reports whether it existed.
func (m *SessionManager) Delete(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	sh.deleted.Add(1)
	m.live.Add(-1)
	return true
}

// Len returns the number of live sessions (including expired ones the
// janitor has not collected yet).
func (m *SessionManager) Len() int { return int(m.live.Load()) }

// Shards returns the number of lock stripes.
func (m *SessionManager) Shards() int { return len(m.shards) }

// countQuery charges n answered queries to the mechanism's counter on the
// session's shard.
func (m *SessionManager) countQuery(s *Session, n int) {
	if idx := s.mech.index(); idx >= 0 && n > 0 {
		m.shardFor(s.id).queries[idx].Add(uint64(n))
	}
}

// Query routes a batch to the session and maintains the per-mechanism
// counters. It is the call sites' single entry point so HTTP and direct
// (in-process) users share the accounting.
func (m *SessionManager) Query(id string, items []QueryItem) (BatchResult, error) {
	s, ok := m.Get(id)
	if !ok {
		return BatchResult{}, ErrSessionNotFound
	}
	res, err := s.Query(items)
	m.countQuery(s, len(res.Results))
	return res, err
}

// ErrSessionNotFound is returned by Query for an unknown or expired ID.
var ErrSessionNotFound = fmt.Errorf("server: session not found")
