package server

// The chaos suite drives real traffic through scripted faults — stalled
// and failing stores, torn wire connections, overload — and asserts the
// service degrades the way the privacy invariants demand: a stalled
// journal becomes a typed, bounded "unavailable" instead of a hang;
// overload sheds instead of queueing toward collapse; the client heals
// itself without ever double-spending budget; and after every recovery
// the durable budget accounting matches exactly what the analyst was
// shown. Every schedule is seeded and call-count indexed, so each run
// replays the same faults (see internal/fault).

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dpgo/svt/client"
	"github.com/dpgo/svt/internal/fault"
	"github.com/dpgo/svt/store"
)

// openFaultManager opens a manager over a fault-wrapped Mem store.
func openFaultManager(t *testing.T, sched *fault.Schedule, deadline time.Duration) *SessionManager {
	t.Helper()
	m, err := Open(ManagerConfig{
		Store:            fault.Wrap(store.NewMem(), sched),
		JournalDeadline:  deadline,
		SweepInterval:    time.Hour,
		SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Release before Close so stalled background appends can drain.
	t.Cleanup(m.Close)
	t.Cleanup(sched.Release)
	return m
}

// waitForCalls blocks until the schedule has seen n calls of op (i.e. a
// stalled operation has actually reached the store).
func waitForCalls(t *testing.T, sched *fault.Schedule, op fault.Op, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sched.Calls(op) < n {
		if time.Now().After(deadline) {
			t.Fatalf("store saw %d %v calls, want %d", sched.Calls(op), op, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosStalledStoreDeadline: a store that stops acking appends must
// not hang requests. The journal deadline converts the stall into a
// typed, retryable ErrUnavailable — HTTP 503 "unavailable" with
// Retry-After — in bounded time, and traffic recovers once the store
// does. The abandoned append completes in the background (budget burned
// for an answer the analyst never saw: the safe direction).
func TestChaosStalledStoreDeadline(t *testing.T) {
	// Append #1 is the create; appends #2 and #3 stall indefinitely.
	sched := fault.NewSchedule(42, fault.Rule{Op: fault.OpAppend, After: 1, Count: 2, Stall: true})
	m := openFaultManager(t, sched, 50*time.Millisecond)

	s := mustCreate(t, m, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 8, Seed: 7})

	start := time.Now()
	_, err := m.Query(s.ID(), sureNegative())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("query against stalled store = %v, want ErrUnavailable", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline took %v, want bounded (~50ms)", el)
	}
	if n := m.deadlineExceeded.Load(); n != 1 {
		t.Fatalf("deadlineExceeded = %d, want 1", n)
	}

	// The HTTP edge maps it to 503 + code "unavailable" + Retry-After.
	srv := httptest.NewServer(NewAPI(m, APIConfig{}))
	defer srv.Close()
	url := srv.URL + "/v1/sessions/" + s.ID() + "/query"
	resp, err := http.Post(url, "application/json", strings.NewReader(`{"query": 0, "threshold": 1e12}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error ErrorDetail `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled HTTP query status = %d, want 503", resp.StatusCode)
	}
	if body.Error.Code != CodeUnavailable {
		t.Fatalf("stalled HTTP query code = %q, want %q", body.Error.Code, CodeUnavailable)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response is missing Retry-After")
	}

	// Store recovers: stalled appends drain, new traffic flows.
	sched.Release()
	if _, err := m.Query(s.ID(), sureNegative()); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestChaosOverloadShedsHTTP: with one in-flight slot occupied by a
// request stuck on a stalled store, the HTTP edge sheds the next request
// with 503 "unavailable" + Retry-After instead of queueing it, counts
// the shed, and serves normally once the stall clears.
func TestChaosOverloadShedsHTTP(t *testing.T) {
	// No journal deadline: the stalled query blocks, pinning its slot.
	sched := fault.NewSchedule(42, fault.Rule{Op: fault.OpAppend, After: 1, Count: 1, Stall: true})
	m := openFaultManager(t, sched, 0)
	s := mustCreate(t, m, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 8, Seed: 7})

	srv := httptest.NewServer(NewAPI(m, APIConfig{MaxInFlight: 1}))
	defer srv.Close()
	url := srv.URL + "/v1/sessions/" + s.ID() + "/query"

	stalled := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"query": 0, "threshold": 1e12}`))
		if err != nil {
			stalled <- -1
			return
		}
		resp.Body.Close()
		stalled <- resp.StatusCode
	}()
	// Append #2 reached the store: the first query now owns the slot.
	waitForCalls(t, sched, fault.OpAppend, 2)

	resp, err := http.Post(url, "application/json", strings.NewReader(`{"query": 0, "threshold": 1e12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response is missing Retry-After")
	}
	if n := m.shedHTTP.Load(); n == 0 {
		t.Fatal("shedHTTP = 0, want > 0")
	}

	sched.Release()
	if code := <-stalled; code != http.StatusOK {
		t.Fatalf("stalled query finished with %d, want 200", code)
	}
	resp, err = http.Post(url, "application/json", strings.NewReader(`{"query": 0, "threshold": 1e12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery = %d, want 200", resp.StatusCode)
	}
}

// startChaosWire runs a WireServer for m on a loopback listener.
func startChaosWire(t *testing.T, m *SessionManager, cfg WireConfig) string {
	t.Helper()
	ws := NewWireServer(m, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestChaosOverloadShedsWire: same shedding contract on the wire edge —
// the query beyond the in-flight cap gets a typed "unavailable" error
// frame with a retry hint, the shed is counted, and afterwards budget
// accounting shows each admitted query answered exactly once.
func TestChaosOverloadShedsWire(t *testing.T) {
	sched := fault.NewSchedule(42, fault.Rule{Op: fault.OpAppend, After: 1, Count: 1, Stall: true})
	m := openFaultManager(t, sched, 0)
	s := mustCreate(t, m, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 8, Seed: 7})
	addr := startChaosWire(t, m, WireConfig{MaxInFlight: 1})

	noRetry := client.Options{
		DialTimeout: 5 * time.Second,
		Retry:       &client.RetryPolicy{MaxAttempts: 1},
	}
	ca, err := client.Dial(addr, noRetry)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := client.Dial(addr, noRetry)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	stalled := make(chan error, 1)
	go func() {
		_, err := ca.Query(s.ID(), []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
		stalled <- err
	}()
	waitForCalls(t, sched, fault.OpAppend, 2)

	_, err = cb.Query(s.ID(), []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != CodeUnavailable {
		t.Fatalf("query beyond cap = %v, want APIError %q", err, CodeUnavailable)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("shed RetryAfter = %v, want > 0", ae.RetryAfter)
	}
	if n := m.shedWire.Load(); n == 0 {
		t.Fatal("shedWire = 0, want > 0")
	}

	sched.Release()
	if err := <-stalled; err != nil {
		t.Fatalf("stalled wire query finished with %v, want success", err)
	}
	if _, err := cb.Query(s.ID(), []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}}); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	// Exactly the two admitted queries spent budget; the shed one never
	// reached the session.
	if st := mustStatus(t, m, s.ID()); st.Answered != 2 {
		t.Fatalf("Answered = %d, want 2", st.Answered)
	}
}

// TestChaosWireClientReconnect: a scripted mid-frame tear kills the
// connection while a sequential workload runs. The torn frame provably
// never reached the server (the write failed), so the client reconnects
// and retries it; the workload completes with every query answered
// exactly once — no lost answers, no double-spent budget.
func TestChaosWireClientReconnect(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	addr := startChaosWire(t, m, WireConfig{})

	// Write #7 (a query frame: 1 hello + 1 mechanisms + 1 create before
	// the queries start) forwards 3 bytes, then the connection dies.
	sched := fault.NewSchedule(42, fault.Rule{Op: fault.OpWrite, After: 6, Count: 1, Tear: true, TearAfter: 3})
	c, err := client.Dial(addr, client.Options{
		DialTimeout: 5 * time.Second,
		Retry:       &client.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
		Dialer: func(a string) (net.Conn, error) {
			conn, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return fault.WrapConn(conn, sched), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.Create(client.CreateParams{Mechanism: "sparse", Epsilon: 1, MaxPositives: 4})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const queries = 20
	for i := 0; i < queries; i++ {
		res, err := c.Query(sess.ID, []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Results) != 1 {
			t.Fatalf("query %d: %d results", i, len(res.Results))
		}
	}
	if st := c.Stats(); st.Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", st.Reconnects)
	}
	// Budget exactness across the tear: the server answered exactly the
	// acked queries — the torn one was not executed, its retry was.
	if st := mustStatus(t, m, sess.ID); st.Answered != queries {
		t.Fatalf("Answered = %d, want %d", st.Answered, queries)
	}
	if err := c.Delete(sess.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}

// TestChaosStoreFaultBudgetExactness: appends that fail with a real
// error (not a stall) refuse the response, and after a restart the
// recovered budget accounting matches exactly the answers the analyst
// was shown — failed appends never became durable, acked ones all did.
func TestChaosStoreFaultBudgetExactness(t *testing.T) {
	dir := t.TempDir()
	wal, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Append #1 is the create; appends #3 and #4 (queries 2 and 3) fail.
	sched := fault.NewSchedule(42, fault.Rule{Op: fault.OpAppend, After: 2, Count: 2, Err: fault.ErrInjected})
	m1, err := Open(ManagerConfig{
		Store:            fault.Wrap(wal, sched),
		SweepInterval:    time.Hour,
		SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mustCreate(t, m1, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 20, Seed: 7})

	acked := 0
	for i := 0; i < 10; i++ {
		_, err := m1.Query(s.ID(), sureNegative())
		switch {
		case err == nil:
			acked++
		case errors.Is(err, ErrStoreAppend):
			// Response withheld: the analyst never saw this answer.
		default:
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if acked != 8 {
		t.Fatalf("acked = %d, want 8 (two injected append failures)", acked)
	}
	m1.Close()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(ManagerConfig{Store: wal2, SweepInterval: time.Hour, SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m2.Close(); wal2.Close() })
	if st := mustStatus(t, m2, s.ID()); st.Answered != acked {
		t.Fatalf("recovered Answered = %d, want %d (exactly the acked answers)", st.Answered, acked)
	}
}
