package server

// Session-state journaling: the codec between the SessionManager and a
// store.SessionStore, plus the replay that rebuilds the full sharded state
// after a restart.
//
// The privacy contract drives the design: every budget-mutating transition
// (session create, queries answered, positives consumed, halt, delete,
// expiry) is appended to the store BEFORE the response acknowledging it is
// released, so a crash can never forget spent budget that an analyst has
// already observed.
//
// Codec v4 is the hot-path cost fix: session records (create/snapshot
// events) are encoded with a compact hand-rolled binary layout instead of
// json.Marshal, and both the session-record and the progress-record
// encoders write into pooled scratch buffers, so journaling a query batch
// allocates nothing. v1–v3 records — which are JSON and therefore start
// with '{', unambiguously distinct from the v4 version-byte prefix —
// decode forever; a v4 reader recovers any older WAL unchanged.
//
// Codec v3 made the journal mechanism-agnostic: progress and snapshot
// records carry the mechanism's OPAQUE evolving-state blob
// (mech.Instance.MarshalState — dpbook's resampled ρ, pmw's learned
// synthetic histogram, nothing for mechanisms fully re-derivable from seed
// + stream position) instead of the special-cased rho/synth fields of
// codec v2. The encode path never names a mechanism; the ONLY
// mechanism-aware special case left in this file is the legacy decode
// mapping that turns v1/v2 records' rho/synth fields into the blobs the
// corresponding mechanisms expect today, so existing WALs recover
// unchanged.
//
// Codec v2 (retained on decode) journals each seeded session's noise-stream
// POSITION (the count of raw draws its sources have consumed). Replay
// rebuilds the mechanism from its original seed and fast-forwards the
// re-seeded source by discarding exactly the journaled number of draws: no
// pre-crash draw is ever re-emitted — replaying noise from position 0 would
// hand the analyst deterministic repeats of pre-crash comparisons, enough
// to binary-search the realized noisy threshold — yet the post-restart
// answer stream is bit-identical to an uninterrupted run, so the Seed
// reproducibility contract survives a crash. Unseeded sessions keep the v1
// behavior: accounting is restored, noise is fresh. v1 records (no version
// tag, seed scrubbed to zero) decode and replay exactly as before.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/dpgo/svt/mech"
	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
)

// Journaled event kinds. evCreate and evSnapshot both carry a full
// sessionRecord (a snapshot entry is just a create with non-zero counters),
// so replay treats them identically.
const (
	evCreate   byte = 1 // session created; Data = sessionRecord JSON
	evProgress byte = 2 // batch answered; Data = binary progressDelta
	evDelete   byte = 3 // session deleted by the analyst; no Data
	evExpire   byte = 4 // session collected by the TTL janitor; no Data
	evSnapshot byte = 5 // full-state baseline entry; Data = sessionRecord JSON
)

// persistVersion tags sessionRecords written by this codec. Version 2 added
// seed retention plus noise-stream positions; version 3 replaced the
// special-cased rho/synth fields with the mechanism's opaque state blob;
// version 4 switched the wire encoding from JSON to the compact binary
// layout (same logical fields). Absent (zero) marks a v1 record, whose
// seed was always scrubbed and whose streams therefore restart fresh on
// replay.
const persistVersion = 4

// streamedVersion is the first codec version whose records carry
// noise-stream positions; seeded sessions journaled at or after it
// fast-forward on replay instead of drawing fresh noise.
const streamedVersion = 2

// ErrStoreAppend wraps a failed journal append. The response that would
// have acknowledged the un-journaled transition is withheld (the HTTP layer
// maps this to 503), because releasing it would hand the analyst a DP
// answer the journal could forget after a crash.
var ErrStoreAppend = errors.New("server: journaling to the session store failed")

// sessionRecord is the JSON payload of evCreate and evSnapshot events:
// everything needed to rebuild the session byte-for-byte — the create
// parameters as realized (TTL resolved, so Params.TTLSeconds is the
// session's actual TTL; the (ε₁, ε₂, ε₃) split recomputes
// deterministically from them), the counters, the noise-stream positions
// and the mechanism's opaque evolving state.
type sessionRecord struct {
	// V is the codec version; absent means v1 (pre-stream-position).
	V         int          `json:"v,omitempty"`
	Params    CreateParams `json:"params"`
	CreatedAt int64        `json:"createdAtUnixNano"`
	Answered  int          `json:"answered"`
	Positives int          `json:"positives"`
	// Draws is the primary noise stream's absolute position: raw 64-bit
	// draws consumed, construction included. Meaningful only for seeded
	// sessions.
	Draws uint64 `json:"draws,omitempty"`
	// AuxDraws is the auxiliary noise stream's absolute position (0 for
	// single-stream mechanisms). The JSON name keeps the v2 wire spelling,
	// where the only two-stream mechanism was pmw and the auxiliary stream
	// was its SVT gate.
	AuxDraws uint64 `json:"gateDraws,omitempty"`
	// State is the mechanism's opaque evolving-state blob
	// (mech.Instance.MarshalState); absent when the mechanism journals
	// none. It never leaves the server: the journal is exactly as private
	// as the mechanism state it is derived from.
	State []byte `json:"state,omitempty"`
	// Rho and Synth are the LEGACY (v1/v2) special-cased evolving state:
	// dpbook's resampled noisy-threshold offset and pmw's learned
	// synthetic histogram. Decode-only — the encode path never sets them;
	// legacyState maps them onto State so old WALs recover unchanged.
	Rho   *float64  `json:"rho,omitempty"`
	Synth []float64 `json:"synth,omitempty"`
}

// legacyState maps a v1/v2 record's special-cased fields onto the opaque
// state blob the corresponding mechanism expects today. This is the only
// mechanism-aware special case the codec retains, and it runs on decode
// paths only.
func (rec *sessionRecord) legacyState() {
	if len(rec.State) > 0 {
		return
	}
	switch {
	case rec.Synth != nil:
		rec.State = mech.SyntheticStateBlob(rec.Synth)
	case rec.Rho != nil:
		rec.State = mech.RhoStateBlob(*rec.Rho)
	}
	rec.Rho, rec.Synth = nil, nil
}

// recBinaryV4 is the first byte of a binary (v4) session record. JSON
// records — every earlier generation — start with '{' (0x7b), so one byte
// disambiguates the generations forever.
const recBinaryV4 byte = 4

// sessionRecord flags byte bits in the v4 binary encoding.
const (
	recHasThreshold = 1 << 0 // Params.Threshold present: 8-byte float64 follows the fixed fields
	recMonotonic    = 1 << 1 // Params.Monotonic
	recHasState     = 1 << 2 // opaque mechanism state blob present
	recHasHistogram = 1 << 3 // Params.Histogram present
	recHasTenant    = 1 << 4 // Params.Tenant present: uvarint length + bytes at the record's end
)

// appendSessionRecord encodes rec in the v4 binary layout:
//
//	version byte (4), flags byte,
//	mechanism (uvarint length + bytes),
//	epsilon, sensitivity, answerFraction, updateFraction, learningRate,
//	ttlSeconds (6 × float64 LE),
//	maxPositives, seed, cacheSize (uvarints),
//	[threshold float64 LE]  [histogram: uvarint count + count × float64 LE]
//	createdAt (zig-zag varint), answered, positives, draws, auxDraws
//	(uvarints), [state: uvarint length + bytes],
//	[tenant: uvarint length + bytes]
//
// Varints keep the common record tens of bytes; the encode allocates
// nothing when buf has capacity. New optional fields go at the END behind
// a fresh flag bit (like tenant), so records written before the field
// existed decode unchanged.
//
//svt:hotpath
func appendSessionRecord(buf []byte, rec *sessionRecord) []byte {
	var flags byte
	if rec.Params.Threshold != nil {
		flags |= recHasThreshold
	}
	if rec.Params.Monotonic {
		flags |= recMonotonic
	}
	if len(rec.State) > 0 {
		flags |= recHasState
	}
	if len(rec.Params.Histogram) > 0 {
		flags |= recHasHistogram
	}
	if rec.Params.Tenant != "" {
		flags |= recHasTenant
	}
	buf = append(buf, recBinaryV4, flags)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Params.Mechanism)))
	buf = append(buf, rec.Params.Mechanism...)
	for _, f := range [...]float64{
		rec.Params.Epsilon, rec.Params.Sensitivity, rec.Params.AnswerFraction,
		rec.Params.UpdateFraction, rec.Params.LearningRate, rec.Params.TTLSeconds,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.AppendUvarint(buf, uint64(rec.Params.MaxPositives))
	buf = binary.AppendUvarint(buf, rec.Params.Seed)
	buf = binary.AppendUvarint(buf, uint64(rec.Params.CacheSize))
	if rec.Params.Threshold != nil {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(*rec.Params.Threshold))
	}
	if len(rec.Params.Histogram) > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(rec.Params.Histogram)))
		for _, v := range rec.Params.Histogram {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.AppendVarint(buf, rec.CreatedAt)
	buf = binary.AppendUvarint(buf, uint64(rec.Answered))
	buf = binary.AppendUvarint(buf, uint64(rec.Positives))
	buf = binary.AppendUvarint(buf, rec.Draws)
	buf = binary.AppendUvarint(buf, rec.AuxDraws)
	if len(rec.State) > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(rec.State)))
		buf = append(buf, rec.State...)
	}
	if rec.Params.Tenant != "" {
		buf = binary.AppendUvarint(buf, uint64(len(rec.Params.Tenant)))
		buf = append(buf, rec.Params.Tenant...)
	}
	return buf
}

// recDecoder walks a v4 binary session record, remembering the first
// failure so field reads chain without per-field error plumbing.
type recDecoder struct {
	data []byte
	bad  bool
}

func (d *recDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *recDecoder) varint() int64 {
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *recDecoder) float() float64 {
	if len(d.data) < 8 {
		d.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *recDecoder) bytes(n uint64) []byte {
	if n > uint64(len(d.data)) {
		d.bad = true
		return nil
	}
	out := d.data[:n]
	d.data = d.data[n:]
	return out
}

// count reads a uvarint that must survive the cast to int: like the
// progress decoder, a corrupt length near 2^64 must fail recovery, not
// wrap negative and refresh spent budget.
func (d *recDecoder) count() int {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.bad = true
		return 0
	}
	return int(v)
}

// decodeSessionRecordV4 is the inverse of appendSessionRecord.
func decodeSessionRecordV4(data []byte) (*sessionRecord, error) {
	bad := func() (*sessionRecord, error) {
		return nil, fmt.Errorf("server: bad v4 session record")
	}
	if len(data) < 2 || data[0] != recBinaryV4 {
		return bad()
	}
	flags := data[1]
	if flags&^byte(recHasThreshold|recMonotonic|recHasState|recHasHistogram|recHasTenant) != 0 {
		return bad()
	}
	d := recDecoder{data: data[2:]}
	rec := &sessionRecord{V: persistVersion}
	rec.Params.Mechanism = Mechanism(d.bytes(d.uvarint()))
	rec.Params.Epsilon = d.float()
	rec.Params.Sensitivity = d.float()
	rec.Params.AnswerFraction = d.float()
	rec.Params.UpdateFraction = d.float()
	rec.Params.LearningRate = d.float()
	rec.Params.TTLSeconds = d.float()
	rec.Params.MaxPositives = d.count()
	rec.Params.Seed = d.uvarint()
	rec.Params.CacheSize = d.count()
	if flags&recHasThreshold != 0 {
		th := d.float()
		rec.Params.Threshold = &th
	}
	rec.Params.Monotonic = flags&recMonotonic != 0
	if flags&recHasHistogram != 0 {
		n := d.count()
		if n == 0 || uint64(n) > uint64(len(d.data))/8 {
			return bad()
		}
		rec.Params.Histogram = make([]float64, n)
		for i := range rec.Params.Histogram {
			rec.Params.Histogram[i] = d.float()
		}
	}
	rec.CreatedAt = d.varint()
	rec.Answered = d.count()
	rec.Positives = d.count()
	rec.Draws = d.uvarint()
	rec.AuxDraws = d.uvarint()
	if flags&recHasState != 0 {
		n := d.uvarint()
		if n == 0 {
			return bad()
		}
		rec.State = append([]byte(nil), d.bytes(n)...)
	}
	if flags&recHasTenant != 0 {
		n := d.uvarint()
		if n == 0 {
			return bad()
		}
		rec.Params.Tenant = string(d.bytes(n))
	}
	if d.bad || len(d.data) != 0 {
		return bad()
	}
	return rec, nil
}

// decodeSessionRecord decodes any generation of a create/snapshot event's
// payload: the v4 binary layout by its version byte, everything older as
// JSON (with the legacy rho/synth fields mapped onto state blobs).
func decodeSessionRecord(data []byte) (*sessionRecord, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("server: empty session record")
	}
	if data[0] == recBinaryV4 {
		return decodeSessionRecordV4(data)
	}
	var rec sessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	// Counter sanity, mirroring the binary decoder: a negative or absurd
	// counter in a JSON record is corruption, and letting it through would
	// understate replayed budget.
	for _, n := range [...]int{rec.Answered, rec.Positives, rec.Params.MaxPositives, rec.Params.CacheSize} {
		if n < 0 || n > math.MaxInt32 {
			return nil, fmt.Errorf("server: session record counter %d out of range", n)
		}
	}
	rec.legacyState()
	return &rec, nil
}

// persistRecord snapshots the session's durable state under its lock. The
// seed is retained (since v2): rebuilding a seeded session re-derives the
// same realized threshold noise, and replay FAST-FORWARDS the stream past
// every journaled draw instead of replaying it from position 0 — so
// pre-crash noise is never re-emitted while the post-restart stream stays
// bit-identical to an uninterrupted run.
func (s *Session) persistRecord() sessionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := sessionRecord{
		V:         persistVersion,
		Params:    s.params,
		CreatedAt: s.createdAt.UnixNano(),
		Answered:  s.answered,
		Positives: s.positives,
		State:     s.inst.MarshalState(),
	}
	rec.Draws, rec.AuxDraws = s.inst.Draws()
	return rec
}

// recBufPool recycles journal encode buffers across appends: the store
// contract forbids retaining Event.Data past Append's return, so a buffer
// can go straight back into the pool, and the steady-state journaling path
// allocates nothing.
var recBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// appendStoreEvent encodes one event of the given kind through a pooled
// buffer and appends it to the store.
func (m *SessionManager) appendStoreEvent(kind byte, id string, rec *sessionRecord) error {
	bp := recBufPool.Get().(*[]byte)
	data := appendSessionRecord((*bp)[:0], rec)
	err := m.storeAppend(store.Event{Kind: kind, ID: id, Data: data})
	*bp = data[:0]
	recBufPool.Put(bp)
	return err
}

// journalCreate appends the session's create record.
func (m *SessionManager) journalCreate(s *Session) error {
	rec := s.persistRecord()
	return m.appendStoreEvent(evCreate, s.id, &rec)
}

// progressDelta is what one answered batch adds to a session's journaled
// state: the counter deltas, the noise-stream draw deltas, and — only when
// positives were consumed — the mechanism's opaque evolving state that
// cannot be re-derived at replay.
type progressDelta struct {
	answered  int
	positives int
	draws     uint64
	aux       uint64
	state     []byte
}

// progressFlags bits in the binary encoding. The rho/synth bits are legacy
// (written by codec v2, decoded forever); v3 writes only the state bit.
const (
	progressHasRho   = 1 << 0 // legacy v2: 8-byte float64 ρ follows
	progressHasSynth = 1 << 1 // legacy v2: uvarint count + 8 bytes/bucket
	progressHasState = 1 << 2 // v3: uvarint length + opaque state blob
)

// takeProgress captures and claims the journal delta accumulated since the
// last claimed position, under the session lock. Claiming is optimistic —
// if the append then fails, the claimed counters and draws are simply never
// journaled, which is safe: the batch's response is withheld, so replaying
// less progress re-emits only answers and noise the analyst never observed,
// and the next snapshot record re-absolutizes everything.
func (s *Session) takeProgress() progressDelta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.takeProgressLocked()
}

// takeProgressLocked is takeProgress for callers already holding s.mu (the
// query path captures the delta in the same critical section it answered
// under).
//
//svt:hotpath
func (s *Session) takeProgressLocked() progressDelta {
	main, aux := s.inst.Draws()
	d := progressDelta{
		answered:  s.answered - s.jAnswered,
		positives: s.positives - s.jPositives,
		draws:     main - s.jDraws,
		aux:       aux - s.jAux,
	}
	s.jAnswered, s.jPositives = s.answered, s.positives
	s.jDraws, s.jAux = main, aux
	if d.positives > 0 {
		// Evolving mechanism state only changes when positive/update budget
		// is consumed; journaling it on every batch would bloat the log.
		d.state = s.inst.MarshalState()
	}
	return d
}

// appendProgressDelta encodes a batch's deltas compactly into buf — this is
// the hot-path record, one per answered batch, written into a pooled
// buffer. Layout (all integers uvarint unless noted): dAnswered,
// dPositives, dDraws, dAuxDraws, a flags byte, then an optional opaque
// state blob (uvarint length + bytes). A v1 record is the first two fields
// alone; v2 records carried ρ/synthetic-histogram fields behind their own
// flag bits, which decodeProgress still accepts.
//
//svt:hotpath
func appendProgressDelta(buf []byte, d progressDelta) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.answered))
	buf = binary.AppendUvarint(buf, uint64(d.positives))
	buf = binary.AppendUvarint(buf, d.draws)
	buf = binary.AppendUvarint(buf, d.aux)
	var flags byte
	if d.state != nil {
		flags |= progressHasState
	}
	buf = append(buf, flags)
	if d.state != nil {
		buf = binary.AppendUvarint(buf, uint64(len(d.state)))
		buf = append(buf, d.state...)
	}
	return buf
}

// progressEvent wraps appendProgressDelta for callers (and tests) that want
// a standalone event.
func progressEvent(id string, d progressDelta) store.Event {
	return store.Event{Kind: evProgress, ID: id, Data: appendProgressDelta(nil, d)}
}

// decodeProgress is the inverse of progressEvent, accepting the v1
// two-field layout, the v2 layout (ρ/synth flag bits, mapped onto the
// equivalent opaque blobs exactly like sessionRecord.legacyState) and the
// v3 layout.
func decodeProgress(data []byte) (progressDelta, error) {
	var d progressDelta
	bad := func() (progressDelta, error) {
		return progressDelta{}, fmt.Errorf("server: bad progress record")
	}
	da, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	dp, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	// Counter deltas must survive the cast to int: a corrupt uvarint near
	// 2^64 would wrap NEGATIVE and subtract from the replayed counters —
	// the one corruption shape that refreshes spent privacy budget instead
	// of failing recovery.
	if da > math.MaxInt32 || dp > math.MaxInt32 {
		return bad()
	}
	d.answered, d.positives = int(da), int(dp)
	if len(data) == 0 {
		return d, nil // v1 record: counters only
	}
	if d.draws, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if d.aux, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if len(data) == 0 {
		return bad()
	}
	flags := data[0]
	data = data[1:]
	if flags&^(progressHasRho|progressHasSynth|progressHasState) != 0 {
		return bad()
	}
	if flags&progressHasRho != 0 {
		if len(data) < 8 {
			return bad()
		}
		rho := math.Float64frombits(binary.LittleEndian.Uint64(data))
		d.state = mech.RhoStateBlob(rho)
		data = data[8:]
	}
	if flags&progressHasSynth != 0 {
		ln, n := binary.Uvarint(data)
		if n <= 0 {
			return bad()
		}
		data = data[n:]
		if ln > uint64(len(data))/8 {
			return bad()
		}
		synth := make([]float64, ln)
		for i := range synth {
			synth[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		d.state = mech.SyntheticStateBlob(synth)
		data = data[8*ln:]
	}
	if flags&progressHasState != 0 {
		ln, n := binary.Uvarint(data)
		if n <= 0 {
			return bad()
		}
		data = data[n:]
		if uint64(len(data)) < ln {
			return bad()
		}
		d.state = append([]byte(nil), data[:ln]...)
		data = data[ln:]
	}
	if len(data) != 0 {
		return bad()
	}
	return d, nil
}

// recoverSessions replays the store's event stream into the (still empty,
// not yet serving) manager. Unknown session IDs in progress/delete/expire
// events are tolerated — they are the benign signature of events whose
// session was compacted away — but a session that cannot be rebuilt is a
// hard error: silently dropping it would refresh spent privacy budget.
func (m *SessionManager) recoverSessions() error {
	events, err := m.store.Recover()
	if err != nil {
		return fmt.Errorf("server: recovering session store: %w", err)
	}
	staged := make(map[string]*sessionRecord, len(events))
	var order []string // deterministic rebuild order: first appearance
	for i, ev := range events {
		switch ev.Kind {
		case evCreate, evSnapshot:
			rec, err := decodeSessionRecord(ev.Data)
			if err != nil {
				return fmt.Errorf("server: replaying event %d: decoding session %s: %w", i, ev.ID, err)
			}
			if _, seen := staged[ev.ID]; !seen {
				order = append(order, ev.ID)
			}
			staged[ev.ID] = rec
		case evProgress:
			rec, ok := staged[ev.ID]
			if !ok {
				continue
			}
			d, err := decodeProgress(ev.Data)
			if err != nil {
				return fmt.Errorf("server: replaying event %d for session %s: %w", i, ev.ID, err)
			}
			rec.Answered += d.answered
			rec.Positives += d.positives
			rec.Draws += d.draws
			rec.AuxDraws += d.aux
			if d.state != nil {
				rec.State = d.state
			}
		case evDelete, evExpire:
			delete(staged, ev.ID)
		default:
			return fmt.Errorf("server: replaying event %d: unknown kind %d", i, ev.Kind)
		}
	}
	now := m.now()
	for _, id := range order {
		rec, ok := staged[id]
		if !ok {
			continue // deleted or expired later in the stream
		}
		s, err := m.rebuildSession(id, rec, now)
		if err != nil {
			return err
		}
		sh := m.shardFor(id)
		s.home = sh
		sh.sessions[id] = s
		m.live.Add(1)
		m.recoveredSessions++
	}
	return nil
}

// rebuildSession reconstructs one session from its journaled record: the
// mechanism is rebuilt from the original parameters (same deterministic
// budget split) and fast-forwarded to the journaled counters. Seeded
// stream-position-carrying records (v2+) additionally fast-forward their
// noise streams to the journaled positions, resuming the exact pre-crash
// stream without re-emitting any draw; unseeded (and v1) sessions draw
// fresh noise. The idle TTL restarts at recovery time.
func (m *SessionManager) rebuildSession(id string, rec *sessionRecord, now time.Time) (*Session, error) {
	ttl := time.Duration(rec.Params.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		return nil, fmt.Errorf("server: recovering session %s: bad ttl %v", id, rec.Params.TTLSeconds)
	}
	s, err := newSession(m.registry, id, rec.Params, ttl, time.Unix(0, rec.CreatedAt))
	if err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if idx, ok := m.mechIndex[s.mech]; ok {
		s.mechIdx = idx
	}
	if err := s.restore(rec.Answered, rec.Positives); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if err := s.restoreState(rec); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	s.touch(now)
	return s, nil
}

// restoreState is crash recovery's mechanism-state step: reinstall the
// journaled opaque evolving state (pmw's learned synthetic histogram,
// dpbook's resampled ρ), then — for seeded records that carry stream
// positions — fast-forward the re-seeded sources past every journaled draw.
func (s *Session) restoreState(rec *sessionRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(rec.State) > 0 {
		if err := s.inst.UnmarshalState(rec.State); err != nil {
			return err
		}
	}
	if rec.V >= streamedVersion && s.params.Seed != 0 {
		if err := s.inst.FastForward(rec.Draws, rec.AuxDraws); err != nil {
			return err
		}
	}
	s.jDraws, s.jAux = s.inst.Draws()
	return nil
}

// journalProgress appends a batch's already-captured deltas; callers hold
// m.journalMu read-locked. Batches that changed nothing (empty results on
// an already halted session) are not journaled.
//
//svt:hotpath
func (m *SessionManager) journalProgress(s *Session, d progressDelta) error {
	if d.answered == 0 {
		return nil
	}
	bp := recBufPool.Get().(*[]byte)
	data := appendProgressDelta((*bp)[:0], d)
	err := m.storeAppend(store.Event{Kind: evProgress, ID: s.id, Data: data})
	*bp = data[:0]
	recBufPool.Put(bp)
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrStoreAppend, err)
	}
	return nil
}

// collectedRecord pairs a session id with its captured durable state, so
// the expensive JSON encoding can happen outside any lock.
type collectedRecord struct {
	id  string
	rec sessionRecord
}

// collectRecords captures every live session's durable state. Callers hold
// m.journalMu write-locked, so the capture is a consistent cut; the work per
// session is a struct copy (plus the mechanism's state-blob copy), not an
// encode.
func (m *SessionManager) collectRecords() []collectedRecord {
	var recs []collectedRecord
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			recs = append(recs, collectedRecord{id: s.id, rec: s.persistRecord()})
		}
		sh.mu.RUnlock()
	}
	return recs
}

// snapEncPool recycles the snapshot encode arena across snapshots: one
// grown buffer instead of one fresh allocation per session record.
var snapEncPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<16); return &b }}

// encodeState turns collected records into snapshot events. Every record
// is encoded into a single pooled arena; the events slice the arena, so
// the store must not retain Event.Data past the Snapshot/Commit call (the
// documented store contract). The caller invokes release once the store
// call returns to hand the arena back to the pool.
func encodeState(recs []collectedRecord) (state []store.Event, release func()) {
	bp := snapEncPool.Get().(*[]byte)
	buf := (*bp)[:0]
	// Record offsets during the encode and slice the *final* arena
	// afterwards: append may reallocate, which would invalidate any
	// sub-slices taken mid-flight.
	offs := make([]int, len(recs)+1)
	for i := range recs {
		offs[i] = len(buf)
		buf = appendSessionRecord(buf, &recs[i].rec)
	}
	offs[len(recs)] = len(buf)
	state = make([]store.Event, len(recs))
	for i := range recs {
		state[i] = store.Event{
			Kind: evSnapshot,
			ID:   recs[i].id,
			Data: buf[offs[i]:offs[i+1]:offs[i+1]],
		}
	}
	return state, func() { *bp = buf[:0]; snapEncPool.Put(bp) }
}

// SnapshotNow writes a full-state snapshot to the store, compacting the
// journal. With a store that supports two-phase snapshots (store.Rotator —
// the WAL), the journal write lock is held only to rotate to a fresh
// segment and copy the per-session records: a consistent cut whose cost is
// independent of any file I/O. The JSON encoding and the baseline file
// write — the expensive, state-size-proportional part — happen outside the
// lock, with query traffic flowing into the new segment; recovery replays
// the committed baseline plus every newer segment, so nothing acknowledged
// is ever lost even if the commit never lands. Stores without rotation
// (Mem, external backends) fall back to the one-phase path under the lock.
// It is a no-op without a store, and safe for concurrent use.
func (m *SessionManager) SnapshotNow() error {
	if m.store == nil {
		return nil
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	var start int64
	if m.tel != nil {
		start = telemetry.Now()
	}
	err := m.snapshotNow()
	if err != nil {
		m.snapFailures.Add(1)
		m.snapLastErr.Store(err.Error())
	} else {
		// A success clears the last error so Stats reports only a CURRENT
		// failure condition; the failure counter keeps the history.
		m.snapLastErr.Store("")
		m.snapLastOK.Store(m.now().UnixNano())
		m.tel.observeSnapshot(start)
	}
	return err
}

// snapshotNow does the work; callers hold m.snapMu.
func (m *SessionManager) snapshotNow() error {
	rotator, ok := m.store.(store.Rotator)
	if !ok {
		m.journalMu.Lock()
		defer m.journalMu.Unlock()
		state, release := encodeState(m.collectRecords())
		err := m.store.Snapshot(state)
		release()
		if err != nil {
			return fmt.Errorf("server: writing store snapshot: %w", err)
		}
		return nil
	}
	m.journalMu.Lock()
	rot, err := rotator.Rotate()
	if err != nil {
		m.journalMu.Unlock()
		return fmt.Errorf("server: rotating store segment: %w", err)
	}
	recs := m.collectRecords()
	m.journalMu.Unlock()
	state, release := encodeState(recs)
	err = rot.Commit(state)
	release()
	if err != nil {
		return fmt.Errorf("server: writing store snapshot: %w", err)
	}
	return nil
}

// snapshotLoop periodically compacts the journal until the manager closes.
// Sessions and queries keep flowing if a snapshot fails; the failure is
// counted, surfaced in Stats (and thus GET /v1/stats) and logged, because a
// store that can no longer compact will eventually exhaust its disk.
func (m *SessionManager) snapshotLoop(interval time.Duration) {
	defer close(m.snapshotDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			if err := m.SnapshotNow(); err != nil {
				m.logf("server: periodic snapshot failed (journal remains authoritative): %v", err)
			}
		}
	}
}
