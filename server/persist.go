package server

// Session-state journaling: the codec between the SessionManager and a
// store.SessionStore, plus the replay that rebuilds the full sharded state
// after a restart.
//
// The privacy contract drives the design: every budget-mutating transition
// (session create, queries answered, positives consumed, halt, delete,
// expiry) is appended to the store BEFORE the response acknowledging it is
// released, so a crash can never forget spent budget that an analyst has
// already observed.
//
// Codec v3 makes the journal mechanism-agnostic: progress and snapshot
// records carry the mechanism's OPAQUE evolving-state blob
// (mech.Instance.MarshalState — dpbook's resampled ρ, pmw's learned
// synthetic histogram, nothing for mechanisms fully re-derivable from seed
// + stream position) instead of the special-cased rho/synth fields of
// codec v2. The encode path never names a mechanism; the ONLY
// mechanism-aware special case left in this file is the legacy decode
// mapping that turns v1/v2 records' rho/synth fields into the blobs the
// corresponding mechanisms expect today, so existing WALs recover
// unchanged.
//
// Codec v2 (retained on decode) journals each seeded session's noise-stream
// POSITION (the count of raw draws its sources have consumed). Replay
// rebuilds the mechanism from its original seed and fast-forwards the
// re-seeded source by discarding exactly the journaled number of draws: no
// pre-crash draw is ever re-emitted — replaying noise from position 0 would
// hand the analyst deterministic repeats of pre-crash comparisons, enough
// to binary-search the realized noisy threshold — yet the post-restart
// answer stream is bit-identical to an uninterrupted run, so the Seed
// reproducibility contract survives a crash. Unseeded sessions keep the v1
// behavior: accounting is restored, noise is fresh. v1 records (no version
// tag, seed scrubbed to zero) decode and replay exactly as before.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/dpgo/svt/mech"
	"github.com/dpgo/svt/store"
)

// Journaled event kinds. evCreate and evSnapshot both carry a full
// sessionRecord (a snapshot entry is just a create with non-zero counters),
// so replay treats them identically.
const (
	evCreate   byte = 1 // session created; Data = sessionRecord JSON
	evProgress byte = 2 // batch answered; Data = binary progressDelta
	evDelete   byte = 3 // session deleted by the analyst; no Data
	evExpire   byte = 4 // session collected by the TTL janitor; no Data
	evSnapshot byte = 5 // full-state baseline entry; Data = sessionRecord JSON
)

// persistVersion tags sessionRecords written by this codec. Version 2 added
// seed retention plus noise-stream positions; version 3 replaced the
// special-cased rho/synth fields with the mechanism's opaque state blob.
// Absent (zero) marks a v1 record, whose seed was always scrubbed and whose
// streams therefore restart fresh on replay.
const persistVersion = 3

// streamedVersion is the first codec version whose records carry
// noise-stream positions; seeded sessions journaled at or after it
// fast-forward on replay instead of drawing fresh noise.
const streamedVersion = 2

// ErrStoreAppend wraps a failed journal append. The response that would
// have acknowledged the un-journaled transition is withheld (the HTTP layer
// maps this to 503), because releasing it would hand the analyst a DP
// answer the journal could forget after a crash.
var ErrStoreAppend = errors.New("server: journaling to the session store failed")

// sessionRecord is the JSON payload of evCreate and evSnapshot events:
// everything needed to rebuild the session byte-for-byte — the create
// parameters as realized (TTL resolved, so Params.TTLSeconds is the
// session's actual TTL; the (ε₁, ε₂, ε₃) split recomputes
// deterministically from them), the counters, the noise-stream positions
// and the mechanism's opaque evolving state.
type sessionRecord struct {
	// V is the codec version; absent means v1 (pre-stream-position).
	V         int          `json:"v,omitempty"`
	Params    CreateParams `json:"params"`
	CreatedAt int64        `json:"createdAtUnixNano"`
	Answered  int          `json:"answered"`
	Positives int          `json:"positives"`
	// Draws is the primary noise stream's absolute position: raw 64-bit
	// draws consumed, construction included. Meaningful only for seeded
	// sessions.
	Draws uint64 `json:"draws,omitempty"`
	// AuxDraws is the auxiliary noise stream's absolute position (0 for
	// single-stream mechanisms). The JSON name keeps the v2 wire spelling,
	// where the only two-stream mechanism was pmw and the auxiliary stream
	// was its SVT gate.
	AuxDraws uint64 `json:"gateDraws,omitempty"`
	// State is the mechanism's opaque evolving-state blob
	// (mech.Instance.MarshalState); absent when the mechanism journals
	// none. It never leaves the server: the journal is exactly as private
	// as the mechanism state it is derived from.
	State []byte `json:"state,omitempty"`
	// Rho and Synth are the LEGACY (v1/v2) special-cased evolving state:
	// dpbook's resampled noisy-threshold offset and pmw's learned
	// synthetic histogram. Decode-only — the encode path never sets them;
	// legacyState maps them onto State so old WALs recover unchanged.
	Rho   *float64  `json:"rho,omitempty"`
	Synth []float64 `json:"synth,omitempty"`
}

// legacyState maps a v1/v2 record's special-cased fields onto the opaque
// state blob the corresponding mechanism expects today. This is the only
// mechanism-aware special case the codec retains, and it runs on decode
// paths only.
func (rec *sessionRecord) legacyState() {
	if len(rec.State) > 0 {
		return
	}
	switch {
	case rec.Synth != nil:
		rec.State = mech.SyntheticStateBlob(rec.Synth)
	case rec.Rho != nil:
		rec.State = mech.RhoStateBlob(*rec.Rho)
	}
	rec.Rho, rec.Synth = nil, nil
}

// persistRecord snapshots the session's durable state under its lock. The
// seed is retained (since v2): rebuilding a seeded session re-derives the
// same realized threshold noise, and replay FAST-FORWARDS the stream past
// every journaled draw instead of replaying it from position 0 — so
// pre-crash noise is never re-emitted while the post-restart stream stays
// bit-identical to an uninterrupted run.
func (s *Session) persistRecord() sessionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := sessionRecord{
		V:         persistVersion,
		Params:    s.params,
		CreatedAt: s.createdAt.UnixNano(),
		Answered:  s.answered,
		Positives: s.positives,
		State:     s.inst.MarshalState(),
	}
	rec.Draws, rec.AuxDraws = s.inst.Draws()
	return rec
}

// sessionEvent encodes the session's full state as an event of the given
// kind (evCreate or evSnapshot).
func sessionEvent(kind byte, s *Session) (store.Event, error) {
	return sessionRecordEvent(kind, s.id, s.persistRecord())
}

// sessionRecordEvent encodes an already-captured record.
func sessionRecordEvent(kind byte, id string, rec sessionRecord) (store.Event, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return store.Event{}, fmt.Errorf("server: encoding session record: %w", err)
	}
	return store.Event{Kind: kind, ID: id, Data: data}, nil
}

// progressDelta is what one answered batch adds to a session's journaled
// state: the counter deltas, the noise-stream draw deltas, and — only when
// positives were consumed — the mechanism's opaque evolving state that
// cannot be re-derived at replay.
type progressDelta struct {
	answered  int
	positives int
	draws     uint64
	aux       uint64
	state     []byte
}

// progressFlags bits in the binary encoding. The rho/synth bits are legacy
// (written by codec v2, decoded forever); v3 writes only the state bit.
const (
	progressHasRho   = 1 << 0 // legacy v2: 8-byte float64 ρ follows
	progressHasSynth = 1 << 1 // legacy v2: uvarint count + 8 bytes/bucket
	progressHasState = 1 << 2 // v3: uvarint length + opaque state blob
)

// takeProgress captures and claims the journal delta accumulated since the
// last claimed position, under the session lock. Claiming is optimistic —
// if the append then fails, the claimed counters and draws are simply never
// journaled, which is safe: the batch's response is withheld, so replaying
// less progress re-emits only answers and noise the analyst never observed,
// and the next snapshot record re-absolutizes everything.
func (s *Session) takeProgress() progressDelta {
	s.mu.Lock()
	defer s.mu.Unlock()
	main, aux := s.inst.Draws()
	d := progressDelta{
		answered:  s.answered - s.jAnswered,
		positives: s.positives - s.jPositives,
		draws:     main - s.jDraws,
		aux:       aux - s.jAux,
	}
	s.jAnswered, s.jPositives = s.answered, s.positives
	s.jDraws, s.jAux = main, aux
	if d.positives > 0 {
		// Evolving mechanism state only changes when positive/update budget
		// is consumed; journaling it on every batch would bloat the log.
		d.state = s.inst.MarshalState()
	}
	return d
}

// progressEvent encodes a batch's deltas compactly — this is the hot-path
// record, one per answered batch. Layout (all integers uvarint unless
// noted): dAnswered, dPositives, dDraws, dAuxDraws, a flags byte, then an
// optional opaque state blob (uvarint length + bytes). A v1 record is the
// first two fields alone; v2 records carried ρ/synthetic-histogram fields
// behind their own flag bits, which decodeProgress still accepts.
func progressEvent(id string, d progressDelta) store.Event {
	buf := make([]byte, 0, 5*binary.MaxVarintLen64+1+len(d.state))
	buf = binary.AppendUvarint(buf, uint64(d.answered))
	buf = binary.AppendUvarint(buf, uint64(d.positives))
	buf = binary.AppendUvarint(buf, d.draws)
	buf = binary.AppendUvarint(buf, d.aux)
	var flags byte
	if d.state != nil {
		flags |= progressHasState
	}
	buf = append(buf, flags)
	if d.state != nil {
		buf = binary.AppendUvarint(buf, uint64(len(d.state)))
		buf = append(buf, d.state...)
	}
	return store.Event{Kind: evProgress, ID: id, Data: buf}
}

// decodeProgress is the inverse of progressEvent, accepting the v1
// two-field layout, the v2 layout (ρ/synth flag bits, mapped onto the
// equivalent opaque blobs exactly like sessionRecord.legacyState) and the
// v3 layout.
func decodeProgress(data []byte) (progressDelta, error) {
	var d progressDelta
	bad := func() (progressDelta, error) {
		return progressDelta{}, fmt.Errorf("server: bad progress record")
	}
	da, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	dp, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	// Counter deltas must survive the cast to int: a corrupt uvarint near
	// 2^64 would wrap NEGATIVE and subtract from the replayed counters —
	// the one corruption shape that refreshes spent privacy budget instead
	// of failing recovery.
	if da > math.MaxInt32 || dp > math.MaxInt32 {
		return bad()
	}
	d.answered, d.positives = int(da), int(dp)
	if len(data) == 0 {
		return d, nil // v1 record: counters only
	}
	if d.draws, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if d.aux, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if len(data) == 0 {
		return bad()
	}
	flags := data[0]
	data = data[1:]
	if flags&^(progressHasRho|progressHasSynth|progressHasState) != 0 {
		return bad()
	}
	if flags&progressHasRho != 0 {
		if len(data) < 8 {
			return bad()
		}
		rho := math.Float64frombits(binary.LittleEndian.Uint64(data))
		d.state = mech.RhoStateBlob(rho)
		data = data[8:]
	}
	if flags&progressHasSynth != 0 {
		ln, n := binary.Uvarint(data)
		if n <= 0 {
			return bad()
		}
		data = data[n:]
		if ln > uint64(len(data))/8 {
			return bad()
		}
		synth := make([]float64, ln)
		for i := range synth {
			synth[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		d.state = mech.SyntheticStateBlob(synth)
		data = data[8*ln:]
	}
	if flags&progressHasState != 0 {
		ln, n := binary.Uvarint(data)
		if n <= 0 {
			return bad()
		}
		data = data[n:]
		if uint64(len(data)) < ln {
			return bad()
		}
		d.state = append([]byte(nil), data[:ln]...)
		data = data[ln:]
	}
	if len(data) != 0 {
		return bad()
	}
	return d, nil
}

// recoverSessions replays the store's event stream into the (still empty,
// not yet serving) manager. Unknown session IDs in progress/delete/expire
// events are tolerated — they are the benign signature of events whose
// session was compacted away — but a session that cannot be rebuilt is a
// hard error: silently dropping it would refresh spent privacy budget.
func (m *SessionManager) recoverSessions() error {
	events, err := m.store.Recover()
	if err != nil {
		return fmt.Errorf("server: recovering session store: %w", err)
	}
	staged := make(map[string]*sessionRecord, len(events))
	var order []string // deterministic rebuild order: first appearance
	for i, ev := range events {
		switch ev.Kind {
		case evCreate, evSnapshot:
			var rec sessionRecord
			if err := json.Unmarshal(ev.Data, &rec); err != nil {
				return fmt.Errorf("server: replaying event %d: decoding session %s: %w", i, ev.ID, err)
			}
			rec.legacyState()
			if _, seen := staged[ev.ID]; !seen {
				order = append(order, ev.ID)
			}
			staged[ev.ID] = &rec
		case evProgress:
			rec, ok := staged[ev.ID]
			if !ok {
				continue
			}
			d, err := decodeProgress(ev.Data)
			if err != nil {
				return fmt.Errorf("server: replaying event %d for session %s: %w", i, ev.ID, err)
			}
			rec.Answered += d.answered
			rec.Positives += d.positives
			rec.Draws += d.draws
			rec.AuxDraws += d.aux
			if d.state != nil {
				rec.State = d.state
			}
		case evDelete, evExpire:
			delete(staged, ev.ID)
		default:
			return fmt.Errorf("server: replaying event %d: unknown kind %d", i, ev.Kind)
		}
	}
	now := m.now()
	for _, id := range order {
		rec, ok := staged[id]
		if !ok {
			continue // deleted or expired later in the stream
		}
		s, err := m.rebuildSession(id, rec, now)
		if err != nil {
			return err
		}
		sh := m.shardFor(id)
		sh.sessions[id] = s
		m.live.Add(1)
		m.recoveredSessions++
	}
	return nil
}

// rebuildSession reconstructs one session from its journaled record: the
// mechanism is rebuilt from the original parameters (same deterministic
// budget split) and fast-forwarded to the journaled counters. Seeded
// stream-position-carrying records (v2+) additionally fast-forward their
// noise streams to the journaled positions, resuming the exact pre-crash
// stream without re-emitting any draw; unseeded (and v1) sessions draw
// fresh noise. The idle TTL restarts at recovery time.
func (m *SessionManager) rebuildSession(id string, rec *sessionRecord, now time.Time) (*Session, error) {
	ttl := time.Duration(rec.Params.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		return nil, fmt.Errorf("server: recovering session %s: bad ttl %v", id, rec.Params.TTLSeconds)
	}
	s, err := newSession(m.registry, id, rec.Params, ttl, time.Unix(0, rec.CreatedAt))
	if err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if idx, ok := m.mechIndex[s.mech]; ok {
		s.mechIdx = idx
	}
	if err := s.restore(rec.Answered, rec.Positives); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if err := s.restoreState(rec); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	s.touch(now)
	return s, nil
}

// restoreState is crash recovery's mechanism-state step: reinstall the
// journaled opaque evolving state (pmw's learned synthetic histogram,
// dpbook's resampled ρ), then — for seeded records that carry stream
// positions — fast-forward the re-seeded sources past every journaled draw.
func (s *Session) restoreState(rec *sessionRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(rec.State) > 0 {
		if err := s.inst.UnmarshalState(rec.State); err != nil {
			return err
		}
	}
	if rec.V >= streamedVersion && s.params.Seed != 0 {
		if err := s.inst.FastForward(rec.Draws, rec.AuxDraws); err != nil {
			return err
		}
	}
	s.jDraws, s.jAux = s.inst.Draws()
	return nil
}

// journalProgress appends the batch's deltas; callers hold m.journalMu
// read-locked. Batches that changed nothing (empty results on an already
// halted session) are not journaled.
func (m *SessionManager) journalProgress(s *Session) error {
	d := s.takeProgress()
	if d.answered == 0 {
		return nil
	}
	if err := m.store.Append(progressEvent(s.id, d)); err != nil {
		return fmt.Errorf("%w: %v", ErrStoreAppend, err)
	}
	return nil
}

// collectedRecord pairs a session id with its captured durable state, so
// the expensive JSON encoding can happen outside any lock.
type collectedRecord struct {
	id  string
	rec sessionRecord
}

// collectRecords captures every live session's durable state. Callers hold
// m.journalMu write-locked, so the capture is a consistent cut; the work per
// session is a struct copy (plus the mechanism's state-blob copy), not an
// encode.
func (m *SessionManager) collectRecords() []collectedRecord {
	var recs []collectedRecord
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			recs = append(recs, collectedRecord{id: s.id, rec: s.persistRecord()})
		}
		sh.mu.RUnlock()
	}
	return recs
}

// encodeState turns collected records into snapshot events.
func encodeState(recs []collectedRecord) ([]store.Event, error) {
	state := make([]store.Event, 0, len(recs))
	for _, cr := range recs {
		ev, err := sessionRecordEvent(evSnapshot, cr.id, cr.rec)
		if err != nil {
			return nil, err
		}
		state = append(state, ev)
	}
	return state, nil
}

// SnapshotNow writes a full-state snapshot to the store, compacting the
// journal. With a store that supports two-phase snapshots (store.Rotator —
// the WAL), the journal write lock is held only to rotate to a fresh
// segment and copy the per-session records: a consistent cut whose cost is
// independent of any file I/O. The JSON encoding and the baseline file
// write — the expensive, state-size-proportional part — happen outside the
// lock, with query traffic flowing into the new segment; recovery replays
// the committed baseline plus every newer segment, so nothing acknowledged
// is ever lost even if the commit never lands. Stores without rotation
// (Mem, external backends) fall back to the one-phase path under the lock.
// It is a no-op without a store, and safe for concurrent use.
func (m *SessionManager) SnapshotNow() error {
	if m.store == nil {
		return nil
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	err := m.snapshotNow()
	if err != nil {
		m.snapFailures.Add(1)
		m.snapLastErr.Store(err.Error())
	} else {
		// A success clears the last error so Stats reports only a CURRENT
		// failure condition; the failure counter keeps the history.
		m.snapLastErr.Store("")
	}
	return err
}

// snapshotNow does the work; callers hold m.snapMu.
func (m *SessionManager) snapshotNow() error {
	rotator, ok := m.store.(store.Rotator)
	if !ok {
		m.journalMu.Lock()
		defer m.journalMu.Unlock()
		state, err := encodeState(m.collectRecords())
		if err != nil {
			return err
		}
		if err := m.store.Snapshot(state); err != nil {
			return fmt.Errorf("server: writing store snapshot: %w", err)
		}
		return nil
	}
	m.journalMu.Lock()
	rot, err := rotator.Rotate()
	if err != nil {
		m.journalMu.Unlock()
		return fmt.Errorf("server: rotating store segment: %w", err)
	}
	recs := m.collectRecords()
	m.journalMu.Unlock()
	state, err := encodeState(recs)
	if err != nil {
		rot.Abort()
		return err
	}
	if err := rot.Commit(state); err != nil {
		return fmt.Errorf("server: writing store snapshot: %w", err)
	}
	return nil
}

// snapshotLoop periodically compacts the journal until the manager closes.
// Sessions and queries keep flowing if a snapshot fails; the failure is
// counted, surfaced in Stats (and thus GET /v1/stats) and logged, because a
// store that can no longer compact will eventually exhaust its disk.
func (m *SessionManager) snapshotLoop(interval time.Duration) {
	defer close(m.snapshotDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			if err := m.SnapshotNow(); err != nil {
				m.logf("server: periodic snapshot failed (journal remains authoritative): %v", err)
			}
		}
	}
}
