package server

// Session-state journaling: the codec between the SessionManager and a
// store.SessionStore, plus the replay that rebuilds the full sharded state
// after a restart.
//
// The privacy contract drives the design: every budget-mutating transition
// (session create, queries answered, positives consumed, halt, delete,
// expiry) is appended to the store BEFORE the response acknowledging it is
// released, so a crash can never forget spent budget that an analyst has
// already observed. Replay restores each session's counters and
// fast-forwards its mechanism (svt.Sparse.Restore and friends); the noise
// streams themselves restart fresh, which preserves the privacy accounting
// — never the other way around.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/dpgo/svt/store"
)

// Journaled event kinds. evCreate and evSnapshot both carry a full
// sessionRecord (a snapshot entry is just a create with non-zero counters),
// so replay treats them identically.
const (
	evCreate   byte = 1 // session created; Data = sessionRecord JSON
	evProgress byte = 2 // batch answered; Data = uvarint Δanswered, Δpositives
	evDelete   byte = 3 // session deleted by the analyst; no Data
	evExpire   byte = 4 // session collected by the TTL janitor; no Data
	evSnapshot byte = 5 // full-state baseline entry; Data = sessionRecord JSON
)

// ErrStoreAppend wraps a failed journal append. The response that would
// have acknowledged the un-journaled transition is withheld (the HTTP layer
// maps this to 503), because releasing it would hand the analyst a DP
// answer the journal could forget after a crash.
var ErrStoreAppend = errors.New("server: journaling to the session store failed")

// sessionRecord is the JSON payload of evCreate and evSnapshot events:
// everything needed to rebuild the session byte-for-byte — the create
// parameters as realized (TTL resolved, so Params.TTLSeconds is the
// session's actual TTL; the (ε₁, ε₂, ε₃) split recomputes
// deterministically from them), plus the counters.
type sessionRecord struct {
	Params    CreateParams `json:"params"`
	CreatedAt int64        `json:"createdAtUnixNano"`
	Answered  int          `json:"answered"`
	Positives int          `json:"positives"`
}

// persistRecord snapshots the session's durable state under its lock.
func (s *Session) persistRecord() sessionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := sessionRecord{
		Params:    s.params,
		CreatedAt: s.createdAt.UnixNano(),
		Answered:  s.answered,
		Positives: s.positives,
	}
	// Never persist the seed: rebuilding a seeded session would replay the
	// SAME noise stream from position 0 (Restore advances counters, not
	// the stream), handing the analyst deterministic repeats of pre-crash
	// comparisons — enough to binary-search the realized noisy threshold
	// for free. Seed 0 makes the recovered mechanism crypto-seeded, so the
	// "fresh noise after recovery" guarantee actually holds; the cost is
	// only that seeded sessions lose reproducibility across a restart.
	rec.Params.Seed = 0
	return rec
}

// sessionEvent encodes the session's full state as an event of the given
// kind (evCreate or evSnapshot).
func sessionEvent(kind byte, s *Session) (store.Event, error) {
	data, err := json.Marshal(s.persistRecord())
	if err != nil {
		return store.Event{}, fmt.Errorf("server: encoding session record: %w", err)
	}
	return store.Event{Kind: kind, ID: s.id, Data: data}, nil
}

// progressEvent encodes a batch's deltas compactly — this is the hot-path
// record, one per answered batch.
func progressEvent(id string, dAnswered, dPositives int) store.Event {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(dAnswered))
	buf = binary.AppendUvarint(buf, uint64(dPositives))
	return store.Event{Kind: evProgress, ID: id, Data: buf}
}

// decodeProgress is the inverse of progressEvent.
func decodeProgress(data []byte) (dAnswered, dPositives int, err error) {
	da, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("server: bad progress record")
	}
	dp, n2 := binary.Uvarint(data[n:])
	if n2 <= 0 {
		return 0, 0, fmt.Errorf("server: bad progress record")
	}
	return int(da), int(dp), nil
}

// batchDeltas derives the journal deltas from a batch result: how many
// queries were answered and how many consumed positive-outcome (or pmw
// update) budget.
func (s *Session) batchDeltas(res BatchResult) (dAnswered, dPositives int) {
	dAnswered = len(res.Results)
	for _, r := range res.Results {
		if s.mech == MechPMW {
			if !r.FromSynthetic {
				dPositives++
			}
		} else if r.Above {
			dPositives++
		}
	}
	return dAnswered, dPositives
}

// recoverSessions replays the store's event stream into the (still empty,
// not yet serving) manager. Unknown session IDs in progress/delete/expire
// events are tolerated — they are the benign signature of events whose
// session was compacted away — but a session that cannot be rebuilt is a
// hard error: silently dropping it would refresh spent privacy budget.
func (m *SessionManager) recoverSessions() error {
	events, err := m.store.Recover()
	if err != nil {
		return fmt.Errorf("server: recovering session store: %w", err)
	}
	staged := make(map[string]*sessionRecord, len(events))
	var order []string // deterministic rebuild order: first appearance
	for i, ev := range events {
		switch ev.Kind {
		case evCreate, evSnapshot:
			var rec sessionRecord
			if err := json.Unmarshal(ev.Data, &rec); err != nil {
				return fmt.Errorf("server: replaying event %d: decoding session %s: %w", i, ev.ID, err)
			}
			if _, seen := staged[ev.ID]; !seen {
				order = append(order, ev.ID)
			}
			staged[ev.ID] = &rec
		case evProgress:
			rec, ok := staged[ev.ID]
			if !ok {
				continue
			}
			da, dp, err := decodeProgress(ev.Data)
			if err != nil {
				return fmt.Errorf("server: replaying event %d for session %s: %w", i, ev.ID, err)
			}
			rec.Answered += da
			rec.Positives += dp
		case evDelete, evExpire:
			delete(staged, ev.ID)
		default:
			return fmt.Errorf("server: replaying event %d: unknown kind %d", i, ev.Kind)
		}
	}
	now := m.now()
	for _, id := range order {
		rec, ok := staged[id]
		if !ok {
			continue // deleted or expired later in the stream
		}
		s, err := m.rebuildSession(id, rec, now)
		if err != nil {
			return err
		}
		sh := m.shardFor(id)
		sh.sessions[id] = s
		m.live.Add(1)
		m.recoveredSessions++
	}
	return nil
}

// rebuildSession reconstructs one session from its journaled record: the
// mechanism is rebuilt from the original parameters (same deterministic
// budget split; fresh noise) and fast-forwarded to the journaled counters.
// The idle TTL restarts at recovery time.
func (m *SessionManager) rebuildSession(id string, rec *sessionRecord, now time.Time) (*Session, error) {
	ttl := time.Duration(rec.Params.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		return nil, fmt.Errorf("server: recovering session %s: bad ttl %v", id, rec.Params.TTLSeconds)
	}
	s, err := newSession(id, rec.Params, ttl, time.Unix(0, rec.CreatedAt))
	if err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if err := s.restore(rec.Answered, rec.Positives); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	s.touch(now)
	return s, nil
}

// journalProgress appends the batch's deltas; callers hold m.journalMu
// read-locked. Batches that changed nothing (empty results on an already
// halted session) are not journaled.
func (m *SessionManager) journalProgress(s *Session, res BatchResult) error {
	dAnswered, dPositives := s.batchDeltas(res)
	if dAnswered == 0 {
		return nil
	}
	if err := m.store.Append(progressEvent(s.id, dAnswered, dPositives)); err != nil {
		return fmt.Errorf("%w: %v", ErrStoreAppend, err)
	}
	return nil
}

// SnapshotNow writes a full-state snapshot to the store, compacting the
// journal. It excludes appenders (the journal write lock) for the whole
// collect-and-persist step, so the snapshot is a consistent cut: every
// transition is either inside the snapshot or in the journal after it,
// never lost between the two. The cost is a pause of query traffic for the
// duration of one state serialization plus one snapshot write per
// SnapshotInterval; splitting the segment switch from the baseline write
// (so the file I/O happens outside the lock) needs multi-segment replay
// and is noted in the ROADMAP as the store layer's next step. It is a
// no-op without a store.
func (m *SessionManager) SnapshotNow() error {
	if m.store == nil {
		return nil
	}
	m.journalMu.Lock()
	defer m.journalMu.Unlock()
	var state []store.Event
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			ev, err := sessionEvent(evSnapshot, s)
			if err != nil {
				sh.mu.RUnlock()
				return err
			}
			state = append(state, ev)
		}
		sh.mu.RUnlock()
	}
	if err := m.store.Snapshot(state); err != nil {
		return fmt.Errorf("server: writing store snapshot: %w", err)
	}
	return nil
}

// snapshotLoop periodically compacts the journal until the manager closes.
func (m *SessionManager) snapshotLoop(interval time.Duration) {
	defer close(m.snapshotDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			// Sessions and queries keep flowing if a snapshot fails; the
			// failure is visible in the store's Health counters.
			_ = m.SnapshotNow()
		}
	}
}
