package server

// Session-state journaling: the codec between the SessionManager and a
// store.SessionStore, plus the replay that rebuilds the full sharded state
// after a restart.
//
// The privacy contract drives the design: every budget-mutating transition
// (session create, queries answered, positives consumed, halt, delete,
// expiry) is appended to the store BEFORE the response acknowledging it is
// released, so a crash can never forget spent budget that an analyst has
// already observed.
//
// Codec v2 additionally journals each seeded session's noise-stream
// POSITION (the count of raw draws its sources have consumed), the current
// noisy-threshold offset ρ for the dpbook mechanism (which resamples it),
// and pmw's learned synthetic histogram. Replay rebuilds the mechanism from
// its original seed and fast-forwards the re-seeded source by discarding
// exactly the journaled number of draws: no pre-crash draw is ever
// re-emitted — replaying noise from position 0 would hand the analyst
// deterministic repeats of pre-crash comparisons, enough to binary-search
// the realized noisy threshold — yet the post-restart answer stream is
// bit-identical to an uninterrupted run, so the Seed reproducibility
// contract survives a crash. Unseeded sessions keep the v1 behavior:
// accounting is restored, noise is fresh. v1 records (no version tag, seed
// scrubbed to zero) decode and replay exactly as before.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/variants"
)

// Journaled event kinds. evCreate and evSnapshot both carry a full
// sessionRecord (a snapshot entry is just a create with non-zero counters),
// so replay treats them identically.
const (
	evCreate   byte = 1 // session created; Data = sessionRecord JSON
	evProgress byte = 2 // batch answered; Data = binary progressDelta
	evDelete   byte = 3 // session deleted by the analyst; no Data
	evExpire   byte = 4 // session collected by the TTL janitor; no Data
	evSnapshot byte = 5 // full-state baseline entry; Data = sessionRecord JSON
)

// persistVersion tags sessionRecords written by this codec. Version 2 added
// seed retention plus noise-stream positions; absent (zero) marks a v1
// record, whose seed was always scrubbed and whose streams therefore
// restart fresh on replay.
const persistVersion = 2

// ErrStoreAppend wraps a failed journal append. The response that would
// have acknowledged the un-journaled transition is withheld (the HTTP layer
// maps this to 503), because releasing it would hand the analyst a DP
// answer the journal could forget after a crash.
var ErrStoreAppend = errors.New("server: journaling to the session store failed")

// sessionRecord is the JSON payload of evCreate and evSnapshot events:
// everything needed to rebuild the session byte-for-byte — the create
// parameters as realized (TTL resolved, so Params.TTLSeconds is the
// session's actual TTL; the (ε₁, ε₂, ε₃) split recomputes
// deterministically from them), the counters, and the noise-stream state.
type sessionRecord struct {
	// V is the codec version; absent means v1 (pre-stream-position).
	V         int          `json:"v,omitempty"`
	Params    CreateParams `json:"params"`
	CreatedAt int64        `json:"createdAtUnixNano"`
	Answered  int          `json:"answered"`
	Positives int          `json:"positives"`
	// Draws is the main noise stream's absolute position: raw 64-bit draws
	// consumed, construction included (for pmw, the Laplace update-release
	// stream). Meaningful only for seeded sessions.
	Draws uint64 `json:"draws,omitempty"`
	// GateDraws is the pmw SVT gate stream's absolute position.
	GateDraws uint64 `json:"gateDraws,omitempty"`
	// Rho is dpbook's current noisy-threshold offset, which is resampled on
	// every positive outcome and therefore not re-derivable from the seed.
	// It never leaves the server: the journal is exactly as private as the
	// seed it is derived from.
	Rho *float64 `json:"rho,omitempty"`
	// Synth is pmw's learned synthetic histogram, so a restored session
	// resumes from its learned distribution instead of the uniform prior.
	Synth []float64 `json:"synth,omitempty"`
}

// persistRecord snapshots the session's durable state under its lock. The
// seed is retained (v2): rebuilding a seeded session re-derives the same
// realized threshold noise, and replay FAST-FORWARDS the stream past every
// journaled draw instead of replaying it from position 0 — so pre-crash
// noise is never re-emitted while the post-restart stream stays
// bit-identical to an uninterrupted run.
func (s *Session) persistRecord() sessionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := sessionRecord{
		V:         persistVersion,
		Params:    s.params,
		CreatedAt: s.createdAt.UnixNano(),
		Answered:  s.answered,
		Positives: s.positives,
	}
	rec.Draws, rec.GateDraws = s.drawsLocked()
	if s.engine != nil {
		rec.Synth = s.engine.Synthetic()
	}
	if rho, ok := s.rhoLocked(); ok {
		rec.Rho = &rho
	}
	return rec
}

// sessionEvent encodes the session's full state as an event of the given
// kind (evCreate or evSnapshot).
func sessionEvent(kind byte, s *Session) (store.Event, error) {
	return sessionRecordEvent(kind, s.id, s.persistRecord())
}

// sessionRecordEvent encodes an already-captured record.
func sessionRecordEvent(kind byte, id string, rec sessionRecord) (store.Event, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return store.Event{}, fmt.Errorf("server: encoding session record: %w", err)
	}
	return store.Event{Kind: kind, ID: id, Data: data}, nil
}

// progressDelta is what one answered batch adds to a session's journaled
// state: the counter deltas, the noise-stream draw deltas, and — only when
// positives were consumed — the evolving mechanism state that cannot be
// re-derived at replay (dpbook's resampled ρ, pmw's reweighted synthetic
// histogram).
type progressDelta struct {
	answered  int
	positives int
	draws     uint64
	gateDraws uint64
	rho       *float64
	synth     []float64
}

// progressFlags bits in the v2 binary encoding.
const (
	progressHasRho   = 1 << 0
	progressHasSynth = 1 << 1
)

// takeProgress captures and claims the journal delta for a finished batch
// under the session lock. The draw deltas are relative to the last claimed
// position; claiming is optimistic — if the append then fails, the claimed
// draws are simply never journaled, which is safe: the batch's response is
// withheld, so skipping fewer draws at replay re-emits only noise the
// analyst never observed, and the next snapshot record re-absolutizes the
// position.
func (s *Session) takeProgress(res BatchResult) progressDelta {
	dAnswered, dPositives := s.batchDeltas(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	main, gate := s.drawsLocked()
	d := progressDelta{
		answered:  dAnswered,
		positives: dPositives,
		draws:     main - s.jDraws,
		gateDraws: gate - s.jGate,
	}
	s.jDraws, s.jGate = main, gate
	if dPositives > 0 {
		if s.engine != nil {
			d.synth = s.engine.Synthetic()
		} else if rho, ok := s.rhoLocked(); ok {
			d.rho = &rho
		}
	}
	return d
}

// progressEvent encodes a batch's deltas compactly — this is the hot-path
// record, one per answered batch. Layout (all integers uvarint unless
// noted): dAnswered, dPositives, dDraws, dGateDraws, a flags byte, then an
// optional ρ (8 bytes, float64 LE bits) and an optional synthetic histogram
// (uvarint length + 8 bytes per bucket). A v1 record is the first two
// fields alone.
func progressEvent(id string, d progressDelta) store.Event {
	buf := make([]byte, 0, 4*binary.MaxVarintLen64+1)
	buf = binary.AppendUvarint(buf, uint64(d.answered))
	buf = binary.AppendUvarint(buf, uint64(d.positives))
	buf = binary.AppendUvarint(buf, d.draws)
	buf = binary.AppendUvarint(buf, d.gateDraws)
	var flags byte
	if d.rho != nil {
		flags |= progressHasRho
	}
	if d.synth != nil {
		flags |= progressHasSynth
	}
	buf = append(buf, flags)
	if d.rho != nil {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(*d.rho))
	}
	if d.synth != nil {
		buf = binary.AppendUvarint(buf, uint64(len(d.synth)))
		for _, v := range d.synth {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return store.Event{Kind: evProgress, ID: id, Data: buf}
}

// decodeProgress is the inverse of progressEvent, accepting both the v1
// two-field layout and the v2 layout.
func decodeProgress(data []byte) (progressDelta, error) {
	var d progressDelta
	bad := func() (progressDelta, error) {
		return progressDelta{}, fmt.Errorf("server: bad progress record")
	}
	da, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	dp, n := binary.Uvarint(data)
	if n <= 0 {
		return bad()
	}
	data = data[n:]
	d.answered, d.positives = int(da), int(dp)
	if len(data) == 0 {
		return d, nil // v1 record: counters only
	}
	if d.draws, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if d.gateDraws, n = binary.Uvarint(data); n <= 0 {
		return bad()
	}
	data = data[n:]
	if len(data) == 0 {
		return bad()
	}
	flags := data[0]
	data = data[1:]
	if flags&progressHasRho != 0 {
		if len(data) < 8 {
			return bad()
		}
		rho := math.Float64frombits(binary.LittleEndian.Uint64(data))
		d.rho = &rho
		data = data[8:]
	}
	if flags&progressHasSynth != 0 {
		ln, n := binary.Uvarint(data)
		if n <= 0 {
			return bad()
		}
		data = data[n:]
		if uint64(len(data)) != 8*ln {
			return bad()
		}
		d.synth = make([]float64, ln)
		for i := range d.synth {
			d.synth[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		data = data[8*ln:]
	}
	if len(data) != 0 {
		return bad()
	}
	return d, nil
}

// batchDeltas derives the journal deltas from a batch result: how many
// queries were answered and how many consumed positive-outcome (or pmw
// update) budget.
func (s *Session) batchDeltas(res BatchResult) (dAnswered, dPositives int) {
	dAnswered = len(res.Results)
	for _, r := range res.Results {
		if s.mech == MechPMW {
			if !r.FromSynthetic {
				dPositives++
			}
		} else if r.Above {
			dPositives++
		}
	}
	return dAnswered, dPositives
}

// recoverSessions replays the store's event stream into the (still empty,
// not yet serving) manager. Unknown session IDs in progress/delete/expire
// events are tolerated — they are the benign signature of events whose
// session was compacted away — but a session that cannot be rebuilt is a
// hard error: silently dropping it would refresh spent privacy budget.
func (m *SessionManager) recoverSessions() error {
	events, err := m.store.Recover()
	if err != nil {
		return fmt.Errorf("server: recovering session store: %w", err)
	}
	staged := make(map[string]*sessionRecord, len(events))
	var order []string // deterministic rebuild order: first appearance
	for i, ev := range events {
		switch ev.Kind {
		case evCreate, evSnapshot:
			var rec sessionRecord
			if err := json.Unmarshal(ev.Data, &rec); err != nil {
				return fmt.Errorf("server: replaying event %d: decoding session %s: %w", i, ev.ID, err)
			}
			if _, seen := staged[ev.ID]; !seen {
				order = append(order, ev.ID)
			}
			staged[ev.ID] = &rec
		case evProgress:
			rec, ok := staged[ev.ID]
			if !ok {
				continue
			}
			d, err := decodeProgress(ev.Data)
			if err != nil {
				return fmt.Errorf("server: replaying event %d for session %s: %w", i, ev.ID, err)
			}
			rec.Answered += d.answered
			rec.Positives += d.positives
			rec.Draws += d.draws
			rec.GateDraws += d.gateDraws
			if d.rho != nil {
				rec.Rho = d.rho
			}
			if d.synth != nil {
				rec.Synth = d.synth
			}
		case evDelete, evExpire:
			delete(staged, ev.ID)
		default:
			return fmt.Errorf("server: replaying event %d: unknown kind %d", i, ev.Kind)
		}
	}
	now := m.now()
	for _, id := range order {
		rec, ok := staged[id]
		if !ok {
			continue // deleted or expired later in the stream
		}
		s, err := m.rebuildSession(id, rec, now)
		if err != nil {
			return err
		}
		sh := m.shardFor(id)
		sh.sessions[id] = s
		m.live.Add(1)
		m.recoveredSessions++
	}
	return nil
}

// rebuildSession reconstructs one session from its journaled record: the
// mechanism is rebuilt from the original parameters (same deterministic
// budget split) and fast-forwarded to the journaled counters. Seeded v2
// sessions additionally fast-forward their noise streams to the journaled
// positions, resuming the exact pre-crash stream without re-emitting any
// draw; unseeded (and v1) sessions draw fresh noise. The idle TTL restarts
// at recovery time.
func (m *SessionManager) rebuildSession(id string, rec *sessionRecord, now time.Time) (*Session, error) {
	ttl := time.Duration(rec.Params.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		return nil, fmt.Errorf("server: recovering session %s: bad ttl %v", id, rec.Params.TTLSeconds)
	}
	s, err := newSession(id, rec.Params, ttl, time.Unix(0, rec.CreatedAt))
	if err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if err := s.restore(rec.Answered, rec.Positives); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	if err := s.restoreStream(rec); err != nil {
		return nil, fmt.Errorf("server: recovering session %s: %w", id, err)
	}
	s.touch(now)
	return s, nil
}

// restoreStream is crash recovery's noise-stream step: restore pmw's
// learned synthetic histogram, then — for seeded v2 records — fast-forward
// the re-seeded sources to the journaled positions and reinstall dpbook's
// resampled ρ.
func (s *Session) restoreStream(rec *sessionRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine != nil && rec.Synth != nil {
		if err := s.engine.RestoreSynthetic(rec.Synth); err != nil {
			return err
		}
	}
	if rec.V >= persistVersion && s.params.Seed != 0 {
		switch {
		case s.sparse != nil:
			if err := s.sparse.FastForward(rec.Draws); err != nil {
				return err
			}
		case s.engine != nil:
			if err := s.engine.FastForward(rec.GateDraws, rec.Draws); err != nil {
				return err
			}
		default:
			ss, ok := s.stream.(variants.StreamState)
			if !ok {
				return fmt.Errorf("server: mechanism %q does not support stream fast-forward", s.mech)
			}
			if err := ss.FastForward(rec.Draws); err != nil {
				return err
			}
			if rec.Rho != nil {
				if rs, ok := s.stream.(variants.RhoState); ok {
					rs.SetRho(*rec.Rho)
				}
			}
		}
	}
	s.jDraws, s.jGate = s.drawsLocked()
	return nil
}

// journalProgress appends the batch's deltas; callers hold m.journalMu
// read-locked. Batches that changed nothing (empty results on an already
// halted session) are not journaled.
func (m *SessionManager) journalProgress(s *Session, res BatchResult) error {
	d := s.takeProgress(res)
	if d.answered == 0 {
		return nil
	}
	if err := m.store.Append(progressEvent(s.id, d)); err != nil {
		return fmt.Errorf("%w: %v", ErrStoreAppend, err)
	}
	return nil
}

// collectedRecord pairs a session id with its captured durable state, so
// the expensive JSON encoding can happen outside any lock.
type collectedRecord struct {
	id  string
	rec sessionRecord
}

// collectRecords captures every live session's durable state. Callers hold
// m.journalMu write-locked, so the capture is a consistent cut; the work per
// session is a struct copy (plus a histogram copy for pmw), not an encode.
func (m *SessionManager) collectRecords() []collectedRecord {
	var recs []collectedRecord
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			recs = append(recs, collectedRecord{id: s.id, rec: s.persistRecord()})
		}
		sh.mu.RUnlock()
	}
	return recs
}

// encodeState turns collected records into snapshot events.
func encodeState(recs []collectedRecord) ([]store.Event, error) {
	state := make([]store.Event, 0, len(recs))
	for _, cr := range recs {
		ev, err := sessionRecordEvent(evSnapshot, cr.id, cr.rec)
		if err != nil {
			return nil, err
		}
		state = append(state, ev)
	}
	return state, nil
}

// SnapshotNow writes a full-state snapshot to the store, compacting the
// journal. With a store that supports two-phase snapshots (store.Rotator —
// the WAL), the journal write lock is held only to rotate to a fresh
// segment and copy the per-session records: a consistent cut whose cost is
// independent of any file I/O. The JSON encoding and the baseline file
// write — the expensive, state-size-proportional part — happen outside the
// lock, with query traffic flowing into the new segment; recovery replays
// the committed baseline plus every newer segment, so nothing acknowledged
// is ever lost even if the commit never lands. Stores without rotation
// (Mem, external backends) fall back to the one-phase path under the lock.
// It is a no-op without a store, and safe for concurrent use.
func (m *SessionManager) SnapshotNow() error {
	if m.store == nil {
		return nil
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	err := m.snapshotNow()
	if err != nil {
		m.snapFailures.Add(1)
		m.snapLastErr.Store(err.Error())
	} else {
		// A success clears the last error so Stats reports only a CURRENT
		// failure condition; the failure counter keeps the history.
		m.snapLastErr.Store("")
	}
	return err
}

// snapshotNow does the work; callers hold m.snapMu.
func (m *SessionManager) snapshotNow() error {
	rotator, ok := m.store.(store.Rotator)
	if !ok {
		m.journalMu.Lock()
		defer m.journalMu.Unlock()
		state, err := encodeState(m.collectRecords())
		if err != nil {
			return err
		}
		if err := m.store.Snapshot(state); err != nil {
			return fmt.Errorf("server: writing store snapshot: %w", err)
		}
		return nil
	}
	m.journalMu.Lock()
	rot, err := rotator.Rotate()
	if err != nil {
		m.journalMu.Unlock()
		return fmt.Errorf("server: rotating store segment: %w", err)
	}
	recs := m.collectRecords()
	m.journalMu.Unlock()
	state, err := encodeState(recs)
	if err != nil {
		rot.Abort()
		return err
	}
	if err := rot.Commit(state); err != nil {
		return fmt.Errorf("server: writing store snapshot: %w", err)
	}
	return nil
}

// snapshotLoop periodically compacts the journal until the manager closes.
// Sessions and queries keep flowing if a snapshot fails; the failure is
// counted, surfaced in Stats (and thus GET /v1/stats) and logged, because a
// store that can no longer compact will eventually exhaust its disk.
func (m *SessionManager) snapshotLoop(interval time.Duration) {
	defer close(m.snapshotDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			if err := m.SnapshotNow(); err != nil {
				m.logf("server: periodic snapshot failed (journal remains authoritative): %v", err)
			}
		}
	}
}
