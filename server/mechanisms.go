package server

// MechanismInfo is one entry of the GET /v1/mechanisms response: the
// registry-driven discovery surface analysts use to pick a mechanism
// without reading Go source. The capability flags mirror
// mech.Capabilities.
type MechanismInfo struct {
	// Name is the registry name used in POST /v1/sessions.
	Name string `json:"name"`
	// Summary is a one-line human-readable description.
	Summary string `json:"summary,omitempty"`
	// NumericReleases reports that the mechanism can release numbers, not
	// just ⊤/⊥ indicators.
	NumericReleases bool `json:"numericReleases"`
	// MonotonicRefinement reports support for the Theorem-5
	// monotonic-query noise reduction.
	MonotonicRefinement bool `json:"monotonicRefinement"`
	// Seedable reports that a non-zero seed makes the answer stream
	// deterministic and crash-replayable bit-identically.
	Seedable bool `json:"seedable"`
	// NeedsHistogram reports that creation requires the private dataset
	// as a histogram.
	NeedsHistogram bool `json:"needsHistogram"`
}

// Mechanisms lists every mechanism this manager serves, sorted by name.
// The list is the snapshot captured at Open time — the same frozen set the
// per-mechanism counters and session creation use — so discovery, stats
// and create can never disagree about what is servable.
func (m *SessionManager) Mechanisms() []MechanismInfo {
	out := make([]MechanismInfo, len(m.mechInfos))
	copy(out, m.mechInfos)
	return out
}

// captureMechanisms freezes the registry's factory set; called once by Open.
func (m *SessionManager) captureMechanisms() {
	factories := m.registry.Factories()
	m.mechInfos = make([]MechanismInfo, 0, len(factories))
	m.mechNames = make([]Mechanism, 0, len(factories))
	m.mechIndex = make(map[Mechanism]int, len(factories))
	for i, f := range factories {
		m.mechInfos = append(m.mechInfos, MechanismInfo{
			Name:                f.Name,
			Summary:             f.Summary,
			NumericReleases:     f.Caps.NumericReleases,
			MonotonicRefinement: f.Caps.MonotonicRefinement,
			Seedable:            f.Caps.Seedable,
			NeedsHistogram:      f.Caps.NeedsHistogram,
		})
		m.mechNames = append(m.mechNames, Mechanism(f.Name))
		m.mechIndex[Mechanism(f.Name)] = i
	}
}
