package server

// End-to-end tests for the binary wire edge: full parity with the HTTP
// API (journal-before-response, rate limiting, telemetry counters, trace
// tree shape, request-ID correlation), pipelined out-of-order responses,
// graceful drain on shutdown, and torn-connection robustness.

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
	"github.com/dpgo/svt/wire"
)

// startWireServer serves ws on an ephemeral port and returns the address.
func startWireServer(t *testing.T, ws *WireServer) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// wireTestConn is a raw-frame test client: it speaks the protocol without
// the SDK so tests control framing, pipelining and teardown exactly.
type wireTestConn struct {
	t    *testing.T
	c    net.Conn
	br   *bufio.Reader
	next uint64
}

func newWireTestConn(t *testing.T, c net.Conn) *wireTestConn {
	return &wireTestConn{t: t, c: c, br: bufio.NewReader(c)}
}

func dialWire(t *testing.T, addr, tenant, traceparent string) *wireTestConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	tc := newWireTestConn(t, c)
	id := tc.send(wire.OpHello, func(dst []byte) []byte {
		return wire.AppendHelloBody(dst, &wire.Hello{Version: wire.Version, Tenant: tenant, Traceparent: traceparent})
	})
	op, gotID, _ := tc.read()
	if op != wire.OpHelloOK || gotID != id {
		t.Fatalf("handshake answered op %#x id %d, want helloOK id %d", op, gotID, id)
	}
	return tc
}

// send writes one frame whose body is built by appendBody and returns its
// request ID. It does not read the response.
func (tc *wireTestConn) send(op byte, appendBody func([]byte) []byte) uint64 {
	tc.t.Helper()
	tc.next++
	payload := wire.AppendHeader(nil, op, tc.next)
	if appendBody != nil {
		payload = appendBody(payload)
	}
	if _, err := tc.c.Write(wire.AppendFrame(nil, payload)); err != nil {
		tc.t.Fatal(err)
	}
	return tc.next
}

// read returns the next response frame. Each read gets its own buffer so
// earlier bodies stay valid.
func (tc *wireTestConn) read() (op byte, reqID uint64, body []byte) {
	tc.t.Helper()
	payload, err := wire.ReadFrame(tc.br, nil, wire.DefaultMaxFrameBytes)
	if err != nil {
		tc.t.Fatalf("reading frame: %v", err)
	}
	op, reqID, body, err = wire.ParseHeader(payload)
	if err != nil {
		tc.t.Fatalf("parsing response header: %v", err)
	}
	return op, reqID, body
}

// query round-trips one single-query batch and returns the response.
func (tc *wireTestConn) query(session, corr string, items []wire.QueryItem) (wire.QueryResponse, *wire.ErrorFrame) {
	tc.t.Helper()
	id := tc.send(wire.OpQuery, func(dst []byte) []byte {
		return wire.AppendQueryBody(dst, session, corr, items)
	})
	op, gotID, body := tc.read()
	if gotID != id {
		tc.t.Fatalf("response for request %d, want %d", gotID, id)
	}
	switch op {
	case wire.OpQueryOK:
		var qr wire.QueryResponse
		if err := wire.DecodeQueryOKBody(body, &qr); err != nil {
			tc.t.Fatalf("decoding query response: %v", err)
		}
		return qr, nil
	case wire.OpError:
		var ef wire.ErrorFrame
		if err := wire.DecodeErrorBody(body, &ef); err != nil {
			tc.t.Fatalf("decoding error frame: %v", err)
		}
		return wire.QueryResponse{}, &ef
	default:
		tc.t.Fatalf("unexpected response op %#x", op)
		return wire.QueryResponse{}, nil
	}
}

func sureNegativeWire() []wire.QueryItem {
	return []wire.QueryItem{{Query: 0, Threshold: 1e12, HasThreshold: true}}
}

// TestWireQueryEndToEnd drives every op over a real TCP connection:
// create (JSON body, tenant from hello), query (binary), status, delete,
// mechanisms — and checks the responses against the manager's view.
func TestWireQueryEndToEnd(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	ws := NewWireServer(m, WireConfig{})
	addr := startWireServer(t, ws)
	tc := dialWire(t, addr, "acme", "")

	// Mechanisms carries the HTTP JSON body verbatim.
	id := tc.send(wire.OpMechanisms, nil)
	op, gotID, body := tc.read()
	if op != wire.OpMechanismsOK || gotID != id {
		t.Fatalf("mechanisms answered op %#x id %d", op, gotID)
	}
	var mr MechanismsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Mechanisms) == 0 {
		t.Fatal("no mechanisms over the wire")
	}

	// Create: JSON body, tenant fixed by the hello frame.
	params, _ := json.Marshal(sparseParams())
	id = tc.send(wire.OpCreate, func(dst []byte) []byte { return append(dst, params...) })
	op, gotID, body = tc.read()
	if op != wire.OpCreateOK || gotID != id {
		t.Fatalf("create answered op %#x id %d: %s", op, gotID, body)
	}
	var cr CreateResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID == "" || cr.TTLSeconds <= 0 {
		t.Fatalf("create response %+v", cr)
	}
	if s, ok := m.Get(cr.ID); !ok || s.params.Tenant != "acme" {
		t.Fatalf("created session missing or wrong tenant")
	}

	// Query: one ⊥ answer, remaining decremented, corr echoed verbatim.
	qr, ef := tc.query(cr.ID, "client-chose-this", sureNegativeWire())
	if ef != nil {
		t.Fatalf("query error %+v", ef)
	}
	if len(qr.Results) != 1 || qr.Results[0].Above || qr.Halted {
		t.Fatalf("query response %+v", qr)
	}
	if string(qr.Corr) != "client-chose-this" {
		t.Fatalf("corr %q not echoed verbatim", qr.Corr)
	}

	// Without a client corr the server mints one, X-Request-Id style.
	qr, ef = tc.query(cr.ID, "", sureNegativeWire())
	if ef != nil {
		t.Fatalf("query error %+v", ef)
	}
	if len(qr.Corr) != 16 || !isHex(string(qr.Corr)) {
		t.Fatalf("minted corr %q, want 16 hex chars", qr.Corr)
	}

	// Status agrees with the manager.
	id = tc.send(wire.OpStatus, func(dst []byte) []byte { return wire.AppendIDBody(dst, cr.ID) })
	op, _, body = tc.read()
	if op != wire.OpStatusOK {
		t.Fatalf("status answered op %#x: %s", op, body)
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Answered != 2 || st.ID != cr.ID {
		t.Fatalf("status %+v, want 2 answered", st)
	}

	// Delete, then the session is gone for both edges.
	id = tc.send(wire.OpDelete, func(dst []byte) []byte { return wire.AppendIDBody(dst, cr.ID) })
	op, gotID, _ = tc.read()
	if op != wire.OpDeleteOK || gotID != id {
		t.Fatalf("delete answered op %#x", op)
	}
	if _, ok := m.Get(cr.ID); ok {
		t.Fatal("session survived wire delete")
	}
	_, ef = tc.query(cr.ID, "", sureNegativeWire())
	if ef == nil || ef.Code != CodeNotFound {
		t.Fatalf("query after delete: %+v, want %s", ef, CodeNotFound)
	}
}

// TestWireErrorFrames pins the typed error surface: bad ops, duplicate
// hello, oversized batches (HTTP 413 message parity), unknown sessions.
func TestWireErrorFrames(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	ws := NewWireServer(m, WireConfig{MaxBatch: 4})
	addr := startWireServer(t, ws)
	tc := dialWire(t, addr, "", "")

	readError := func() wire.ErrorFrame {
		t.Helper()
		op, _, body := tc.read()
		if op != wire.OpError {
			t.Fatalf("op %#x, want error frame", op)
		}
		var ef wire.ErrorFrame
		if err := wire.DecodeErrorBody(body, &ef); err != nil {
			t.Fatal(err)
		}
		return ef
	}

	tc.send(0x42, nil)
	if ef := readError(); ef.Code != CodeBadRequest || !strings.Contains(ef.Message, "unknown op") {
		t.Fatalf("unknown op: %+v", ef)
	}
	tc.send(wire.OpHello, func(dst []byte) []byte {
		return wire.AppendHelloBody(dst, &wire.Hello{Version: wire.Version})
	})
	if ef := readError(); ef.Code != CodeBadRequest || ef.Message != "duplicate hello" {
		t.Fatalf("duplicate hello: %+v", ef)
	}
	s := mustCreate(t, m, sparseParams())
	_, ef := tc.query(s.ID(), "", make([]wire.QueryItem, 5))
	if ef == nil || ef.Code != CodeTooLarge || ef.Message != "batch of 5 exceeds the cap of 4" {
		t.Fatalf("oversized batch: %+v", ef)
	}
	_, ef = tc.query(s.ID(), "", nil)
	if ef == nil || ef.Code != CodeBadRequest {
		t.Fatalf("empty batch: %+v", ef)
	}
	_, ef = tc.query("nope", "", sureNegativeWire())
	if ef == nil || ef.Code != CodeNotFound {
		t.Fatalf("unknown session: %+v", ef)
	}
}

// TestWireRateLimitedParity: a tenant over budget gets the typed
// rate_limited error frame with the HTTP 429's message and ceil-seconds
// retry hint, from the same limiter instance that guards the HTTP edge.
func TestWireRateLimitedParity(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	rl, err := NewRateLimiter(RateLimitConfig{Rate: 0.5, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(m, WireConfig{})
	ws.SetRateLimiter(rl)
	addr := startWireServer(t, ws)
	s := mustCreate(t, m, sparseParams())
	tc := dialWire(t, addr, "acme", "")

	if _, ef := tc.query(s.ID(), "", sureNegativeWire()); ef != nil {
		t.Fatalf("first request within burst rejected: %+v", ef)
	}
	_, ef := tc.query(s.ID(), "", sureNegativeWire())
	if ef == nil || ef.Code != CodeRateLimited {
		t.Fatalf("second request: %+v, want %s", ef, CodeRateLimited)
	}
	if ef.Message != `tenant "acme" exceeded 0.5 requests/sec` {
		t.Fatalf("rate-limit message %q diverges from the HTTP 429", ef.Message)
	}
	if ef.RetryAfterSeconds < 1 {
		t.Fatalf("retry-after %d, want >= 1", ef.RetryAfterSeconds)
	}
	// The connection survives a rejection; budget refills.
	time.Sleep(2100 * time.Millisecond)
	if _, ef := tc.query(s.ID(), "", sureNegativeWire()); ef != nil {
		t.Fatalf("request after refill rejected: %+v", ef)
	}
}

// TestWirePipelinedOutOfOrder floods one connection with concurrent query
// frames before reading anything; every response must come back exactly
// once, matched by request ID, with its own correlation echoed.
func TestWirePipelinedOutOfOrder(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	ws := NewWireServer(m, WireConfig{})
	addr := startWireServer(t, ws)
	s := mustCreate(t, m, sparseParams())
	tc := dialWire(t, addr, "", "")

	const n = 64
	// One buffered write carrying all frames, so the server's reader sees
	// buffered input and dispatches to the worker pool.
	var batch []byte
	sent := make(map[uint64]string, n)
	for i := 0; i < n; i++ {
		tc.next++
		corr := "corr-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		sent[tc.next] = corr
		payload := wire.AppendQueryBody(wire.AppendHeader(nil, wire.OpQuery, tc.next), s.ID(), corr, sureNegativeWire())
		batch = wire.AppendFrame(batch, payload)
	}
	if _, err := tc.c.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		op, reqID, body := tc.read()
		if op != wire.OpQueryOK {
			t.Fatalf("response %d: op %#x, body %s", i, op, body)
		}
		corr, ok := sent[reqID]
		if !ok {
			t.Fatalf("response for unknown or duplicate request id %d", reqID)
		}
		delete(sent, reqID)
		var qr wire.QueryResponse
		if err := wire.DecodeQueryOKBody(body, &qr); err != nil {
			t.Fatal(err)
		}
		if string(qr.Corr) != corr {
			t.Fatalf("request %d echoed corr %q, want %q", reqID, qr.Corr, corr)
		}
	}
	if len(sent) != 0 {
		t.Fatalf("%d requests never answered", len(sent))
	}
	if got := mustStatus(t, m, s.ID()).Answered; got != n {
		t.Fatalf("answered %d, want %d", got, n)
	}
}

// TestWireJournalBeforeResponse is the wire twin of
// TestGroupCommitJournalBeforeResponse: every response RELEASED over the
// wire must be recoverable from a crash image of the journal directory.
func TestWireJournalBeforeResponse(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ws := NewWireServer(m, WireConfig{})
	addr := startWireServer(t, ws)

	const sessions, per = 8, 50
	ids := make([]string, sessions)
	for i := range ids {
		s, err := m.Create(CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30, Threshold: ptr(1e12)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID()
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			// Each session gets its own connection; synchronous round trips
			// mean every received response was released by the server.
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			tc := newWireTestConn(t, conn)
			tc.send(wire.OpHello, func(dst []byte) []byte {
				return wire.AppendHelloBody(dst, &wire.Hello{Version: wire.Version})
			})
			tc.read()
			for i := 0; i < per; i++ {
				if _, ef := tc.query(id, "", sureNegativeWire()); ef != nil {
					t.Errorf("query: %+v", ef)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// The crash image: the journal directory as-is, no shutdown, no snapshot.
	crash := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m2, st2 := openWALManager(t, crash)
	defer st2.Close()
	for _, id := range ids {
		if got := mustStatus(t, m2, id).Answered; got != per {
			t.Fatalf("session %s: recovered %d answered, want %d (all responses were released)", id, got, per)
		}
	}
}

// TestWireShutdownDrains: Shutdown must let pipelined in-flight requests
// finish and their responses flush before returning, and the progress they
// journaled must be in the final snapshot taken after the drain — the
// svtserve SIGTERM sequence.
func TestWireShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(m, WireConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	s := mustCreate(t, m, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30, Threshold: ptr(1e12)})
	tc := dialWire(t, ln.Addr().String(), "", "")

	const n = 16
	var batch []byte
	for i := 0; i < n; i++ {
		tc.next++
		batch = wire.AppendFrame(batch, wire.AppendQueryBody(
			wire.AppendHeader(nil, wire.OpQuery, tc.next), s.ID(), "", sureNegativeWire()))
	}
	if _, err := tc.c.Write(batch); err != nil {
		t.Fatal(err)
	}
	// The first response proves the server has the whole batch buffered
	// (it arrived in one segment); now shut down mid-pipeline.
	tc.read()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	// Every remaining in-flight response must still arrive.
	for i := 1; i < n; i++ {
		if op, _, body := tc.read(); op != wire.OpQueryOK {
			t.Fatalf("drained response %d: op %#x, body %s", i, op, body)
		}
	}

	// The svtserve teardown order: wire drain, then the final snapshot.
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	st.Close()
	m2, st2 := openWALManager(t, dir)
	defer st2.Close()
	if got := mustStatus(t, m2, s.ID()).Answered; got != n {
		t.Fatalf("final snapshot recovered %d answered, want %d", got, n)
	}
}

// TestWireTornConnectionMidPipeline: a client that vanishes with requests
// in flight must leak nothing — the session stays usable, and Shutdown
// still drains promptly. Run with -race to catch lock/state races in the
// teardown path.
func TestWireTornConnectionMidPipeline(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	ws := NewWireServer(m, WireConfig{})
	addr := startWireServer(t, ws)
	s := mustCreate(t, m, sparseParams())

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc := newWireTestConn(t, conn)
	tc.send(wire.OpHello, func(dst []byte) []byte {
		return wire.AppendHelloBody(dst, &wire.Hello{Version: wire.Version})
	})
	tc.read()
	var batch []byte
	for i := 0; i < 64; i++ {
		tc.next++
		batch = wire.AppendFrame(batch, wire.AppendQueryBody(
			wire.AppendHeader(nil, wire.OpQuery, tc.next), s.ID(), "", sureNegativeWire()))
	}
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	tc.read()    // at least one request is mid-flight
	conn.Close() // and the client is gone

	// The session's lock must not be held by any orphaned worker: a direct
	// manager query would deadlock if it were.
	done := make(chan error, 1)
	go func() {
		_, err := m.Query(s.ID(), sureNegative())
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query after torn connection hung: session lock leaked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after torn connection: %v", err)
	}
}

// TestWireTelemetryCounters: the wire edge's families move — per-op
// ok/error counters and the connections gauge — in the same registry as
// everything else.
func TestWireTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newTestManager(t, ManagerConfig{})
	ws := NewWireServer(m, WireConfig{Telemetry: reg})
	addr := startWireServer(t, ws)
	s := mustCreate(t, m, sparseParams())
	tc := dialWire(t, addr, "", "")

	if _, ef := tc.query(s.ID(), "", sureNegativeWire()); ef != nil {
		t.Fatalf("query: %+v", ef)
	}
	if _, ef := tc.query("nope", "", sureNegativeWire()); ef == nil {
		t.Fatal("unknown session did not error")
	}
	id := tc.send(wire.OpStatus, func(dst []byte) []byte { return wire.AppendIDBody(dst, s.ID()) })
	if op, gotID, _ := tc.read(); op != wire.OpStatusOK || gotID != id {
		t.Fatalf("status answered op %#x", op)
	}

	out := string(reg.Expose(nil))
	for _, want := range []string{
		`svt_wire_requests_total{op="hello",status="ok"} 1`,
		`svt_wire_requests_total{op="query",status="ok"} 1`,
		`svt_wire_requests_total{op="query",status="error"} 1`,
		`svt_wire_requests_total{op="status",status="ok"} 1`,
		`svt_wire_connections 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// shapeOf renders a span tree as a nested name list, the structural
// fingerprint the two edges must share.
func shapeOf(n trace.Node) string {
	var b strings.Builder
	b.WriteString(n.Name)
	if len(n.Children) > 0 {
		b.WriteString("(")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(shapeOf(c))
		}
		b.WriteString(")")
	}
	return b.String()
}

// TestWireTraceParity: a traced wire query must retain a span tree
// identical in shape to the HTTP edge's — decode, manager(answer,
// journal.wait(store.sync)), encode — differing only in the root name and
// route, and the minted correlation ID must resolve it through GET
// /v1/traces/{id} exactly like an X-Request-Id.
func TestWireTraceParity(t *testing.T) {
	st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tracer := trace.New(trace.Config{SampleEvery: 1})
	m, err := Open(ManagerConfig{
		SweepInterval: time.Hour, SnapshotInterval: -1, Store: st, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	api := NewAPI(m, APIConfig{Tracer: tracer})
	ws := NewWireServer(m, WireConfig{Tracer: tracer})
	addr := startWireServer(t, ws)
	s := mustCreate(t, m, sparseParams())

	// One traced query per edge.
	rec := postQuery(t, api, s.ID(), nil)
	httpReqID := rec.Header().Get("X-Request-Id")
	tc := dialWire(t, addr, "", "")
	qr, ef := tc.query(s.ID(), "", sureNegativeWire())
	if ef != nil {
		t.Fatalf("wire query: %+v", ef)
	}
	wireReqID := string(qr.Corr)

	hv, ok := tracer.Lookup(httpReqID)
	if !ok {
		t.Fatalf("no trace for HTTP request %s", httpReqID)
	}
	wv, ok := tracer.Lookup(wireReqID)
	if !ok {
		t.Fatalf("no trace for wire request %s", wireReqID)
	}
	if hv.Root.Name != "http" || wv.Root.Name != "wire" {
		t.Fatalf("root names %q / %q, want http / wire", hv.Root.Name, wv.Root.Name)
	}
	if wv.Route != "wire:query" {
		t.Fatalf("wire route %q", wv.Route)
	}
	hShape := strings.TrimPrefix(shapeOf(hv.Root), "http")
	wShape := strings.TrimPrefix(shapeOf(wv.Root), "wire")
	if hShape != wShape {
		t.Fatalf("span tree shapes diverge:\n http %s\n wire %s", hShape, wShape)
	}
	for _, span := range []string{"decode", "manager(answer journal.wait(", "store.sync", "encode"} {
		if !strings.Contains(wShape, span) {
			t.Fatalf("wire tree misses %q in the golden chain: %s", span, wShape)
		}
	}

	// The wire correlation ID resolves through the HTTP trace endpoints.
	drec := httptest.NewRecorder()
	api.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/v1/traces/"+wireReqID, nil))
	if drec.Code != http.StatusOK {
		t.Fatalf("/v1/traces/{wire-corr} status %d: %s", drec.Code, drec.Body.String())
	}
	var v trace.View
	if err := json.Unmarshal(drec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.RequestID != wireReqID || v.Route != "wire:query" {
		t.Fatalf("trace identity %+v", v)
	}
}

// discardConn is a net.Conn whose writes vanish, for measuring the wire
// handler's cost without kernel I/O — the binary twin of
// nullResponseWriter.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)       { return 0, net.ErrClosed }
func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// wireQueryAllocs measures the steady-state allocations of one
// single-query request through the wire handler (decode, session, journal,
// encode, frame write) on the inline path.
func wireQueryAllocs(t *testing.T, m *SessionManager, cfg WireConfig) float64 {
	t.Helper()
	ws := NewWireServer(m, cfg)
	s, err := m.Create(CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30, Threshold: ptr(1e12),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := ws.newConn(discardConn{})
	body := wire.AppendQueryBody(nil, s.ID(), "", []wire.QueryItem{{Query: 1}})
	run := func() {
		if err := c.handleOp(c.sc, wire.OpQuery, 1, body); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pools and the session intern map
	return testing.AllocsPerRun(200, run)
}

// TestWireQueryHotPathAllocs pins the wire edge's per-request allocation
// budget at 6 — the ISSUE 9 acceptance cap, well under the HTTP path's 10.
func TestWireQueryHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector, inflating alloc counts; CI pins this in a non-race pass")
	}
	const budget = 6
	t.Run("mem", func(t *testing.T) {
		m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
		defer m.Close()
		if got := wireQueryAllocs(t, m, WireConfig{}); got > budget {
			t.Fatalf("single-query wire path allocates %.1f/op, budget %d", got, budget)
		}
	})
	t.Run("wal", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if got := wireQueryAllocs(t, m, WireConfig{}); got > budget {
			t.Fatalf("single-query WAL wire path allocates %.1f/op, budget %d", got, budget)
		}
	})
	// Journal deadline armed but never firing: the pooled waiter path
	// must keep the wire edge inside the same 6-alloc pin.
	t.Run("wal+deadline", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st, JournalDeadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if got := wireQueryAllocs(t, m, WireConfig{}); got > budget {
			t.Fatalf("deadline-armed single-query WAL wire path allocates %.1f/op, budget %d", got, budget)
		}
	})
	t.Run("wal+telemetry+tracer", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		reg := telemetry.NewRegistry()
		tracer := trace.New(trace.Config{SampleEvery: 1 << 30})
		m, err := Open(ManagerConfig{
			SweepInterval: time.Hour, SnapshotInterval: -1,
			Store: st, Telemetry: reg, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		cfg := WireConfig{Telemetry: reg, Tracer: tracer}
		if got := wireQueryAllocs(t, m, cfg); got > budget {
			t.Fatalf("instrumented single-query wire path allocates %.1f/op, budget %d", got, budget)
		}
	})
}
