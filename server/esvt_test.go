package server

// End-to-end tests for esvt, the exponential-noise SVT registered entirely
// through the mech registry: everything here works with ZERO esvt-specific
// code in session.go, persist.go or http.go — which is the point of the
// mechanism seam. The seeded crash-replay matrix in replay_test.go covers
// esvt too, via the registry-driven mechanism list.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const mechESVT = Mechanism("esvt")

func esvtParams() CreateParams {
	return CreateParams{
		Mechanism:    mechESVT,
		Epsilon:      1,
		MaxPositives: 3,
		Threshold:    ptr(0.5),
		Seed:         17,
	}
}

func TestESVTServedEndToEnd(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	api := NewAPI(m, APIConfig{})

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		return rec
	}

	// Create.
	rec := do(http.MethodPost, "/v1/sessions",
		`{"mechanism":"esvt","epsilon":1,"maxPositives":3,"threshold":0.5,"seed":17}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var created CreateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Mechanism != mechESVT {
		t.Fatalf("created mechanism %q", created.Mechanism)
	}
	// Realized split: ε₁:ε₂ = 1:(2c)^{2/3}, no ε₃, composing to ε.
	k := math.Pow(6, 2.0/3)
	if math.Abs(created.Budget.Eps1-1/(1+k)) > 1e-9 || created.Budget.Eps3 != 0 {
		t.Fatalf("realized split (%v, %v, %v), want ε₁=1/(1+(2c)^(2/3)), ε₃=0", created.Budget.Eps1, created.Budget.Eps2, created.Budget.Eps3)
	}
	if math.Abs(created.Budget.Eps1+created.Budget.Eps2-1) > 1e-9 || math.Abs(created.Budget.Total-1) > 1e-9 {
		t.Fatalf("split does not compose to ε: %+v", created.Budget)
	}

	// Batched query: two certain positives, one certain negative, then a
	// certain positive that halts the session at c = 3.
	rec = do(http.MethodPost, "/v1/sessions/"+created.ID+"/query",
		`{"queries":[{"query":1e12},{"query":1e12},{"query":-1e12},{"query":1e12},{"query":1e12}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var batch BatchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 || !batch.Halted || batch.Remaining != 0 {
		t.Fatalf("batch %+v, want 4 answers then halt", batch)
	}
	want := []bool{true, true, false, true}
	for i, r := range batch.Results {
		if r.Above != want[i] || r.Numeric {
			t.Fatalf("result %d = %+v, want above=%v, indicator-only", i, r, want[i])
		}
	}

	// Status.
	rec = do(http.MethodGet, "/v1/sessions/"+created.ID, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	var st SessionStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Answered != 4 || st.Positives != 3 || !st.Halted || st.Remaining != 0 {
		t.Fatalf("status %+v", st)
	}

	// Stats count esvt queries under their own registry-driven key.
	if got := m.Stats().Queries[mechESVT]; got != 4 {
		t.Fatalf("stats queries[esvt] = %d, want 4", got)
	}

	// Delete.
	if rec = do(http.MethodDelete, "/v1/sessions/"+created.ID, ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	if rec = do(http.MethodGet, "/v1/sessions/"+created.ID, ""); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted session still served: %d", rec.Code)
	}
}

// TestESVTSeededDeterministicAcrossManagers pins the Seed contract through
// the full server stack for the registry-added mechanism.
func TestESVTSeededDeterministicAcrossManagers(t *testing.T) {
	script := replayScript(mechESVT, 24)
	run := func() []QueryResult {
		m := newTestManager(t, ManagerConfig{})
		s := mustCreate(t, m, replayParams(mechESVT, 4))
		return runScript(t, m, s.ID(), script)
	}
	if !resultsEqual(run(), run()) {
		t.Fatal("identically seeded esvt sessions diverged")
	}
}
