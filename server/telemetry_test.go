package server

// Observability regression tests: the /metrics exposition must stay valid
// Prometheus text covering all three instrumented layers, /healthz must
// degrade honestly, per-tenant 429 counts must surface, slow-query log
// lines must carry a trace ID, and the whole telemetry surface must be
// race-free under session churn.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/telemetry/promtext"
)

// newTelemetryStack builds a WAL-backed manager and API sharing one
// telemetry registry, the full production wiring.
func newTelemetryStack(t *testing.T, dir string) (*SessionManager, *API, *telemetry.Registry) {
	t.Helper()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	reg := telemetry.NewRegistry()
	m, err := Open(ManagerConfig{
		SweepInterval:    time.Hour,
		SnapshotInterval: -1,
		Store:            st,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, NewAPI(m, APIConfig{Telemetry: reg}), reg
}

func scrapeMetrics(t *testing.T, api *API) (string, []promtext.Family) {
	t.Helper()
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("GET /metrics content type %q, want %q", ct, telemetry.ContentType)
	}
	fams, err := promtext.Parse(rec.Body.String())
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, rec.Body.String())
	}
	return rec.Body.String(), fams
}

// TestMetricsEndpointGolden drives real traffic through the full stack and
// requires GET /metrics to expose a valid, three-layer exposition of at
// least 15 families.
func TestMetricsEndpointGolden(t *testing.T) {
	m, api, _ := newTelemetryStack(t, t.TempDir())

	// Traffic spanning routes, tenants and status classes.
	create := func(tenant string) string {
		body := strings.NewReader(`{"mechanism":"sparse","epsilon":1,"maxPositives":100}`)
		req := httptest.NewRequest(http.MethodPost, "/v1/sessions", body)
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
		}
		var cr CreateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
			t.Fatal(err)
		}
		return cr.ID
	}
	id := create("acme")
	create("")
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/query",
			strings.NewReader(`{"query":0,"threshold":1e12}`)))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, rec.Code)
		}
	}
	// A positive and a 404 so those counters move too.
	api.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost,
		"/v1/sessions/"+id+"/query", strings.NewReader(`{"query":0,"threshold":-1e12}`)))
	api.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/no/such", nil))
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	text, fams := scrapeMetrics(t, api)
	if len(fams) < 15 {
		t.Fatalf("/metrics exposes %d families, want >= 15", len(fams))
	}
	byName := make(map[string]promtext.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	// One family per layer must exist AND have moved.
	for _, want := range []string{
		"svt_http_requests_total",             // HTTP layer
		"svt_http_request_duration_seconds",   // HTTP histogram
		"svt_http_in_flight_requests",         //
		"svt_query_duration_seconds",          // manager histogram
		"svt_queries_total",                   // manager counters
		"svt_query_positives_total",           //
		"svt_tenant_sessions",                 // tenant gauges
		"svt_tenant_epsilon_spent",            //
		"svt_sessions_live",                   //
		"svt_shed_total",                      // load shedding (per edge)
		"svt_journal_deadline_exceeded_total", // journal-wait deadline
		"svt_snapshot_duration_seconds",       // snapshot timing
		"svt_store_appends_total",             // store layer
		"svt_store_sync_duration_seconds",     //
		"svt_store_commit_batch_events",       //
		"svt_store_append_duration_seconds",   //
		"svt_store_recovery_duration_seconds", //
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	sum := func(name string, match func(map[string]string) bool) float64 {
		var total float64
		for _, s := range byName[name].Samples {
			if match == nil || match(s.Labels) {
				total += s.Value
			}
		}
		return total
	}
	if n := sum("svt_queries_total", nil); n < 21 {
		t.Errorf("svt_queries_total %v, want >= 21", n)
	}
	if n := sum("svt_query_positives_total", nil); n < 1 {
		t.Errorf("svt_query_positives_total %v, want >= 1", n)
	}
	if n := sum("svt_http_requests_total", func(l map[string]string) bool {
		return l["route"] == "/v1/sessions/{id}/query" && l["class"] == "2xx"
	}); n < 21 {
		t.Errorf("2xx query-route requests %v, want >= 21", n)
	}
	if n := sum("svt_http_requests_total", func(l map[string]string) bool {
		return l["class"] == "4xx"
	}); n < 1 {
		t.Errorf("no 4xx requests counted despite the 404 probe")
	}
	if n := sum("svt_tenant_sessions", func(l map[string]string) bool {
		return l["tenant"] == "acme"
	}); n != 1 {
		t.Errorf("svt_tenant_sessions{tenant=acme} = %v, want 1", n)
	}
	if n := sum("svt_store_appends_total", nil); n < 20 {
		t.Errorf("svt_store_appends_total %v, want >= 20", n)
	}
	// Build info belongs to cmd/svtserve; the library registry must not
	// have grown a hidden dependency on it.
	if strings.Contains(text, "svt_build_info") {
		t.Error("svt_build_info leaked into the library-registered families")
	}
}

// TestHealthzDegrades requires /healthz to answer 200 when healthy and 503
// with a machine-readable reason once snapshots fail, in that order.
func TestHealthzDegrades(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	api := NewAPI(m, APIConfig{})
	mustCreate(t, m, sparseParams())

	get := func() (int, HealthResponse) {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var body HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body is not JSON: %v: %s", err, rec.Body.String())
		}
		return rec.Code, body
	}

	if code, body := get(); code != http.StatusOK || body.Status != "ok" {
		t.Fatalf("healthy /healthz: %d %+v", code, body)
	}
	// The manager snapshots once at open, so a WAL-backed /healthz always
	// reports how stale the recovery baseline is.
	if _, body := get(); body.SnapshotAgeSeconds == nil {
		t.Fatal("healthy /healthz missing snapshotAgeSeconds after the open-time snapshot")
	}

	// Close the store out from under the manager: the next snapshot fails
	// and health must degrade with the reason attached.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotNow(); err == nil {
		t.Fatal("snapshot against a closed store succeeded")
	}
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz: status %d, want 503 (%v)", code, body)
	}
	if body.Status != "unhealthy" || body.Reason == "" {
		t.Fatalf("degraded /healthz body %+v, want unhealthy with a reason", body)
	}
}

// TestRateLimited429PerTenant: rejected tenants must show up by name in
// both GET /v1/stats and the /metrics exposition.
func TestRateLimited429PerTenant(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	api := NewAPI(m, APIConfig{Telemetry: reg})
	rl, err := NewRateLimiter(RateLimitConfig{Rate: 1, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	api.SetRateLimiter(rl)
	handler := rl.Middleware(api)

	hammer := func(tenant string, n int) int {
		rejected := 0
		for i := 0; i < n; i++ {
			req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
			if tenant != "" {
				req.Header.Set(TenantHeader, tenant)
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code == http.StatusTooManyRequests {
				rejected++
			}
		}
		return rejected
	}
	if hammer("acme", 10) == 0 || hammer("", 10) == 0 {
		t.Fatal("burst of 10 at rate 1/s was never limited")
	}

	// /metrics is outside /v1/ and must never be throttled.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics throttled: status %d", rec.Code)
	}
	fams, err := promtext.Parse(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, f := range fams {
		if f.Name == "svt_http_rate_limited_total" {
			for _, s := range f.Samples {
				got[s.Labels["tenant"]] = s.Value
			}
		}
	}
	if got["acme"] == 0 || got["default"] == 0 {
		t.Fatalf("svt_http_rate_limited_total per tenant = %v, want acme and default > 0", got)
	}

	// Same numbers through GET /v1/stats (unthrottled direct dispatch).
	srec := httptest.NewRecorder()
	api.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st Stats
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RateLimited["acme"] != uint64(got["acme"]) || st.RateLimited["default"] != uint64(got["default"]) {
		t.Fatalf("stats rateLimited %v disagrees with /metrics %v", st.RateLimited, got)
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLogging: requests over the threshold produce a structured
// line carrying the trace ID (the client's, when supplied), the session,
// mechanism, batch size and journal wait; requests under it stay silent.
func TestSlowQueryLogging(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	s := mustCreate(t, m, sparseParams())

	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))

	// Threshold 1ns: everything is slow.
	api := NewAPI(m, APIConfig{SlowQueryThreshold: time.Nanosecond, Logger: logger})
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query",
		strings.NewReader(`{"query":0,"threshold":1e12}`))
	req.Header.Set("X-Request-Id", "trace-123")
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "trace-123" {
		t.Fatalf("X-Request-Id not echoed: %q", got)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &line); err != nil {
		t.Fatalf("slow-query log line is not one JSON object: %v: %q", err, buf.String())
	}
	for k, want := range map[string]any{
		"msg":       "slow query",
		"traceId":   "trace-123",
		"session":   s.ID(),
		"mechanism": string(MechSparse),
		"batch":     float64(1),
	} {
		if line[k] != want {
			t.Errorf("slow log %s = %v, want %v", k, line[k], want)
		}
	}
	if _, ok := line["duration"]; !ok {
		t.Error("slow log line missing duration")
	}
	if _, ok := line["journalWait"]; !ok {
		t.Error("slow log line missing journalWait")
	}

	// No client trace ID: one must be minted for the line.
	before := len(buf.String())
	req2 := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query",
		strings.NewReader(`{"query":0,"threshold":1e12}`))
	api.ServeHTTP(httptest.NewRecorder(), req2)
	var line2 map[string]any
	if err := json.Unmarshal([]byte(buf.String()[before:]), &line2); err != nil {
		t.Fatal(err)
	}
	if id, _ := line2["traceId"].(string); len(id) != 16 {
		t.Fatalf("generated trace ID %q, want 16 hex chars", line2["traceId"])
	}

	// Threshold 1h: nothing is slow, nothing is logged.
	var quiet syncBuffer
	api2 := NewAPI(m, APIConfig{SlowQueryThreshold: time.Hour, Logger: slog.New(slog.NewJSONHandler(&quiet, nil))})
	api2.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost,
		"/v1/sessions/"+s.ID()+"/query", strings.NewReader(`{"query":0,"threshold":1e12}`)))
	if quiet.String() != "" {
		t.Fatalf("fast query logged as slow: %q", quiet.String())
	}
}

// TestStatsAndTelemetryUnderChurn hammers create/query/delete/stats/
// snapshot/scrape concurrently; run under -race this is the data-race
// regression net for the whole telemetry surface.
func TestStatsAndTelemetryUnderChurn(t *testing.T) {
	m, api, reg := newTelemetryStack(t, t.TempDir())

	const workers, iters = 4, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s, err := m.Create(CreateParams{
					Mechanism: MechSparse, Epsilon: 1, MaxPositives: 5,
					Tenant: fmt.Sprintf("tenant-%d", w),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Query(s.ID(), sureNegative()); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					m.Delete(s.ID())
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Stats()
				reg.Expose(nil)
				if i%5 == 0 {
					if err := m.SnapshotNow(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := m.Stats()
	if st.TotalQueries != workers*iters {
		t.Fatalf("stats totalQueries %d, want %d", st.TotalQueries, workers*iters)
	}
	if st.Queries[MechSparse] != workers*iters {
		t.Fatalf("stats queries[sparse] %d, want %d", st.Queries[MechSparse], workers*iters)
	}
	if st.Positives[MechSparse] != 0 {
		t.Fatalf("sure-negative workload counted %d positives", st.Positives[MechSparse])
	}
	_, fams := scrapeMetrics(t, api)
	for _, f := range fams {
		if f.Name == "svt_queries_total" {
			var total float64
			for _, s := range f.Samples {
				total += s.Value
			}
			if total != float64(workers*iters) {
				t.Fatalf("svt_queries_total %v, want %d", total, workers*iters)
			}
		}
	}
}

// TestTenantSurvivesRecovery: the tenant attribution set at create must
// come back after a crash-restart, both from the journal tail and from a
// compacted snapshot, or tenant budget gauges silently reset on restart.
func TestTenantSurvivesRecovery(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		name := "journal-only"
		if snapshot {
			name = "snapshotted"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m1, _ := openWALManager(t, dir)
			p := sparseParams()
			p.Tenant = "acme"
			s := mustCreate(t, m1, p)
			mustQuery(t, m1, s.ID(), sureNegative())
			if snapshot {
				if err := m1.SnapshotNow(); err != nil {
					t.Fatal(err)
				}
			}
			m1.Close()

			m2, _ := openWALManager(t, dir)
			got, ok := m2.Get(s.ID())
			if !ok {
				t.Fatal("session lost across restart")
			}
			if got.params.Tenant != "acme" {
				t.Fatalf("recovered tenant %q, want %q", got.params.Tenant, "acme")
			}
		})
	}
}
