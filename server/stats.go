package server

import "github.com/dpgo/svt/store"

// Stats is the GET /v1/stats response body: a service-wide aggregate
// assembled from per-shard atomic counters, so taking a snapshot never
// blocks query traffic and never takes a global lock.
type Stats struct {
	// Live is the current number of sessions (expired-but-unswept ones
	// included).
	Live int `json:"live"`
	// Shards is the number of lock stripes.
	Shards int `json:"shards"`
	// Created, Deleted and Expired count session lifecycle events since
	// the manager started.
	Created uint64 `json:"created"`
	Deleted uint64 `json:"deleted"`
	Expired uint64 `json:"expired"`
	// Recovered is how many sessions were rebuilt from the store when the
	// manager opened.
	Recovered int `json:"recovered,omitempty"`
	// Queries counts answered queries by mechanism. The key set is exactly
	// the manager's registered mechanisms (GET /v1/mechanisms), zero
	// counts included.
	Queries map[Mechanism]uint64 `json:"queries"`
	// TotalQueries is the sum over Queries.
	TotalQueries uint64 `json:"totalQueries"`
	// Positives counts above-threshold answers by mechanism, same key set
	// as Queries.
	Positives map[Mechanism]uint64 `json:"positives"`
	// Halts counts sessions that transitioned to the halted state by
	// mechanism (each session counted at most once, recovered-halted
	// sessions excluded), same key set as Queries.
	Halts map[Mechanism]uint64 `json:"halts"`
	// ShardLive is the live-session count per shard, for spotting skew.
	ShardLive []int `json:"shardLive"`
	// Store is the persistence backend's health, absent when the manager
	// runs without one.
	Store *store.Health `json:"store,omitempty"`
	// SnapshotFailures counts failed journal-compaction snapshots since the
	// manager opened; serving continues through them, but a store that can
	// no longer compact will eventually exhaust its disk.
	SnapshotFailures uint64 `json:"snapshotFailures,omitempty"`
	// LastSnapshotError is the most recent snapshot failure; "" when no
	// snapshot has failed since the last success (the failure condition is
	// current, not historical — SnapshotFailures keeps the history).
	LastSnapshotError string `json:"lastSnapshotError,omitempty"`
	// EncodeFailures counts HTTP responses whose JSON encode or write
	// failed after the status header was out (silently truncated from the
	// client's point of view). Filled by the HTTP layer; always zero when
	// Stats is read directly off the manager.
	EncodeFailures uint64 `json:"encodeFailures,omitempty"`
	// RateLimited counts 429 rejections per tenant ("default" for requests
	// without an X-Tenant header, OtherTenant past the label-cardinality
	// cap). Filled by the HTTP layer when a rate limiter is attached;
	// absent otherwise.
	RateLimited map[string]uint64 `json:"rateLimited,omitempty"`
	// SnapshotAgeSeconds is seconds since the last successful
	// journal-compaction snapshot, absent before the first success.
	SnapshotAgeSeconds *float64 `json:"snapshotAgeSeconds,omitempty"`
}

// Stats aggregates the per-shard counters. The snapshot is monotone but
// not atomic across shards — counts may be mid-update while it is taken —
// which is the usual and acceptable trade for a stats endpoint that never
// serializes the data path.
func (m *SessionManager) Stats() Stats {
	st := Stats{
		Live:      m.Len(),
		Shards:    len(m.shards),
		Queries:   make(map[Mechanism]uint64, len(m.mechNames)),
		Positives: make(map[Mechanism]uint64, len(m.mechNames)),
		Halts:     make(map[Mechanism]uint64, len(m.mechNames)),
		ShardLive: make([]int, len(m.shards)),
	}
	for i, sh := range m.shards {
		st.Created += sh.created.Load()
		st.Deleted += sh.deleted.Load()
		st.Expired += sh.expired.Load()
		for j, name := range m.mechNames {
			st.Queries[name] += sh.queries[j].Load()
			st.Positives[name] += sh.positives[j].Load()
			st.Halts[name] += sh.halts[j].Load()
		}
		sh.mu.RLock()
		st.ShardLive[i] = len(sh.sessions)
		sh.mu.RUnlock()
	}
	for _, n := range st.Queries {
		st.TotalQueries += n
	}
	st.Recovered = m.recoveredSessions
	if h, ok := m.store.(store.Healther); ok {
		health := h.Health()
		st.Store = &health
	}
	st.SnapshotFailures = m.snapFailures.Load()
	if msg, ok := m.snapLastErr.Load().(string); ok {
		st.LastSnapshotError = msg
	}
	if age, ok := m.SnapshotAge(); ok {
		secs := age.Seconds()
		st.SnapshotAgeSeconds = &secs
	}
	return st
}
