package server

import (
	"testing"
	"time"
)

// cacheCreate is a sparse session opted into the response cache.
func cacheCreate(size int) CreateParams {
	return CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 100, CacheSize: size}
}

// TestCacheSizeValidation pins the opt-in gate: bounds, the capability
// requirement, and the seed exclusion.
func TestCacheSizeValidation(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	cases := []struct {
		name string
		p    CreateParams
	}{
		{"negative", func() CreateParams { p := cacheCreate(-1); return p }()},
		{"too large", cacheCreate(MaxCacheSize + 1)},
		{"seeded", func() CreateParams {
			p := cacheCreate(8)
			p.Seed = 7
			return p
		}()},
		{"no monotonic capability", CreateParams{
			Mechanism: MechPMW, Epsilon: 1, MaxPositives: 3, CacheSize: 8,
			Threshold: ptr(50.0), Histogram: []float64{1, 2, 3},
		}},
	}
	for _, tc := range cases {
		if _, err := m.Create(tc.p); err == nil {
			t.Errorf("%s: cacheSize accepted", tc.name)
		}
	}
	if _, err := m.Create(cacheCreate(8)); err != nil {
		t.Fatalf("valid cacheSize rejected: %v", err)
	}
}

// TestCachedSessionServesRepeats: through the manager, a repeated
// identical ⊥ query answers from the cache — no draws, no budget movement —
// and the session keeps serving and journaling correctly.
func TestCachedSessionServesRepeats(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	s, err := m.Create(cacheCreate(16))
	if err != nil {
		t.Fatal(err)
	}
	// Probe for the cache wrapper by capability (hit accounting), not by
	// concrete type: server code must stay free of mechanism-type asserts.
	if _, ok := s.inst.(interface{ Hits() uint64 }); !ok {
		t.Fatalf("session instance is %T, want a cache-wrapped instance with Hits()", s.inst)
	}
	if _, err := m.Query(s.ID(), sureNegative()); err != nil {
		t.Fatal(err)
	}
	drawsBefore, _ := s.inst.Draws()
	res, err := m.Query(s.ID(), sureNegative())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || res.Results[0].Above {
		t.Fatalf("cached repeat answered %+v", res)
	}
	if drawsAfter, _ := s.inst.Draws(); drawsAfter != drawsBefore {
		t.Fatal("cached repeat consumed noise")
	}
	st := s.Status()
	if st.Answered != 2 || st.Positives != 0 {
		t.Fatalf("status after cached repeat: %+v", st)
	}
}

// TestCachedSessionSurvivesRestart: cacheSize is journaled with the create
// params, so a recovered session is rebuilt WITH its (cold) cache and the
// budget accounting intact.
func TestCachedSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, st := openWALManager(t, dir)
	s := mustCreate(t, m1, cacheCreate(16))
	mustQuery(t, m1, s.ID(), sureNegative())
	mustQuery(t, m1, s.ID(), sureNegative()) // cache hit
	want := durableStatus(mustStatus(t, m1, s.ID()))
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m2, _ := openWALManager(t, dir)
	got, ok := m2.Get(s.ID())
	if !ok {
		t.Fatal("cached session not recovered")
	}
	if _, isCached := got.inst.(interface{ Hits() uint64 }); !isCached {
		t.Fatalf("recovered instance is %T, want a cache-wrapped instance with Hits()", got.inst)
	}
	if gotSt := durableStatus(got.Status()); gotSt != want {
		t.Fatalf("recovered status:\n got  %+v\n want %+v", gotSt, want)
	}
	// The rebuilt cache is cold but serving works.
	mustQuery(t, m2, s.ID(), sureNegative())
}
