package pmw_test

import (
	"fmt"

	"github.com/dpgo/svt/pmw"
)

// An interactive session: easy queries are free, hard ones spend budget.
func ExampleEngine() {
	engine, err := pmw.New(pmw.Config{
		Histogram:  []float64{100, 100, 700, 100}, // bucket 2 dominates
		Epsilon:    4,
		MaxUpdates: 3,
		Threshold:  50,
		Seed:       9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Whole-domain query: the uniform synthetic prior already sums to the
	// right total, so this is free.
	res, err := engine.Answer([]int{0, 1, 2, 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("total: %.0f (free: %v)\n", res.Value, res.FromSynthetic)

	// The dominant bucket: the uniform prior is way off, budget is spent.
	res, err = engine.Answer([]int{2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bucket 2 close to 700: %v (free: %v)\n", res.Value > 600 && res.Value < 800, res.FromSynthetic)
	fmt.Println("updates spent:", engine.Updates())
	// Output:
	// total: 1000 (free: true)
	// bucket 2 close to 700: true (free: false)
	// updates spent: 1
}
