package pmw

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// Handler exposes an Engine over HTTP as a private query-answering
// mediator — the interactive setting of the paper as an actual service.
//
//	POST /v1/query      {"buckets":[0,1,2]}
//	  → {"value":123.4,"fromSynthetic":true,"exhausted":false}
//	GET  /v1/status     → {"answered":3,"updates":1,"updatesLeft":5,"exhausted":false}
//	GET  /v1/synthetic  → {"histogram":[...]}  (public by construction)
//
// The handler serializes access to the engine (the engine itself is not
// concurrency-safe) so it can sit behind a standard HTTP server. Every
// response — including 404s for unknown paths, 405s for wrong methods and
// 413s for oversized bodies — is JSON.
type Handler struct {
	mu     sync.Mutex
	engine *Engine
	mux    *http.ServeMux
}

// maxBodyBytes caps /v1/query request bodies; a bucket list big enough to
// hit it is malformed, not a real query.
const maxBodyBytes = 1 << 20

// NewHandler wraps the engine. The engine must not be used directly while
// the handler serves it.
func NewHandler(engine *Engine) (*Handler, error) {
	if engine == nil {
		return nil, errors.New("pmw: nil engine")
	}
	h := &Handler{engine: engine, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/query", h.handleQuery)
	h.mux.HandleFunc("/v1/status", h.handleStatus)
	h.mux.HandleFunc("/v1/synthetic", h.handleSynthetic)
	h.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errorResponse{"no such endpoint: " + r.URL.Path})
	})
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Buckets []int `json:"buckets"`
}

// QueryResponse is the POST /v1/query response body.
type QueryResponse struct {
	Value         float64 `json:"value"`
	FromSynthetic bool    `json:"fromSynthetic"`
	// Exhausted reports that the update budget is spent; the value is an
	// unchecked synthetic estimate.
	Exhausted bool `json:"exhausted"`
}

// StatusResponse is the GET /v1/status response body.
type StatusResponse struct {
	Answered    int  `json:"answered"`
	Updates     int  `json:"updates"`
	UpdatesLeft int  `json:"updatesLeft"`
	Exhausted   bool `json:"exhausted"`
}

// SyntheticResponse is the GET /v1/synthetic response body.
type SyntheticResponse struct {
	Histogram []float64 `json:"histogram"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is out can only be logged by the
	// server; the encoder writing to a ResponseWriter cannot fail on the
	// value shapes used here.
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	h.mu.Lock()
	res, err := h.engine.Answer(req.Buckets)
	h.mu.Unlock()
	switch {
	case errors.Is(err, ErrExhausted):
		writeJSON(w, http.StatusOK, QueryResponse{
			Value: res.Value, FromSynthetic: res.FromSynthetic, Exhausted: true,
		})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusOK, QueryResponse{
			Value: res.Value, FromSynthetic: res.FromSynthetic,
		})
	}
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET required"})
		return
	}
	h.mu.Lock()
	resp := StatusResponse{
		Answered:    h.engine.Answered(),
		Updates:     h.engine.Updates(),
		UpdatesLeft: h.engine.UpdatesLeft(),
		Exhausted:   h.engine.Exhausted(),
	}
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleSynthetic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET required"})
		return
	}
	h.mu.Lock()
	hist := h.engine.Synthetic()
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, SyntheticResponse{Histogram: hist})
}
