package pmw

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	engine, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func postQuery(t *testing.T, url string, buckets []int) (QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(QueryRequest{Buckets: buckets})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestNewHandlerNilEngine(t *testing.T) {
	if _, err := NewHandler(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestHTTPQueryFlow(t *testing.T) {
	srv := newTestServer(t, baseConfig())
	// Whole-domain query: synthetic estimate equals truth, always free.
	res, code := postQuery(t, srv.URL, []int{0, 1, 2, 3, 4, 5})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !res.FromSynthetic || res.Exhausted {
		t.Fatalf("unexpected response %+v", res)
	}
	if res.Value < 1000-1e-6 || res.Value > 1000+1e-6 {
		t.Fatalf("value %v, want ~1000", res.Value)
	}
	// Heavily skewed bucket: must trigger a data access.
	res, code = postQuery(t, srv.URL, []int{4})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.FromSynthetic {
		t.Fatal("hard query answered from synthetic")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := newTestServer(t, baseConfig())
	if _, code := postQuery(t, srv.URL, nil); code != http.StatusBadRequest {
		t.Errorf("empty query: status %d", code)
	}
	if _, code := postQuery(t, srv.URL, []int{99}); code != http.StatusBadRequest {
		t.Errorf("out-of-range bucket: status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong methods.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query: status %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status: status %d", resp.StatusCode)
	}
}

func TestHTTPStatusAndSynthetic(t *testing.T) {
	srv := newTestServer(t, baseConfig())
	postQuery(t, srv.URL, []int{4}) // force one update

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Answered != 1 {
		t.Errorf("answered %d, want 1", status.Answered)
	}
	if status.Updates+status.UpdatesLeft != 4 {
		t.Errorf("updates %d + left %d != MaxUpdates 4", status.Updates, status.UpdatesLeft)
	}

	resp, err = http.Get(srv.URL + "/v1/synthetic")
	if err != nil {
		t.Fatal(err)
	}
	var synth SyntheticResponse
	if err := json.NewDecoder(resp.Body).Decode(&synth); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(synth.Histogram) != 6 {
		t.Fatalf("histogram length %d", len(synth.Histogram))
	}
	mass := 0.0
	for _, v := range synth.Histogram {
		mass += v
	}
	if mass < 999 || mass > 1001 {
		t.Errorf("synthetic mass %v", mass)
	}
}

func TestHTTPExhaustionFlag(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxUpdates = 1
	cfg.Threshold = 1
	srv := newTestServer(t, cfg)
	sawExhausted := false
	for i := 0; i < 30; i++ {
		res, code := postQuery(t, srv.URL, []int{i % 6})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if res.Exhausted {
			sawExhausted = true
			break
		}
	}
	if !sawExhausted {
		t.Fatal("exhaustion never signaled")
	}
}

func TestHTTPJSONErrorHardening(t *testing.T) {
	srv := newTestServer(t, baseConfig())
	expectJSONError := func(resp *http.Response, wantStatus int, what string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", what, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q, want application/json", what, ct)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Errorf("%s: body is not a JSON error (%v)", what, err)
		}
	}

	// Unknown paths get a JSON 404, not the stdlib text page.
	resp, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	expectJSONError(resp, http.StatusNotFound, "unknown path")

	// Wrong methods get a JSON 405 with Allow set.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow %q, want POST", allow)
	}
	expectJSONError(resp, http.StatusMethodNotAllowed, "GET /v1/query")

	// Oversized bodies get a JSON 413 instead of being read to the end.
	big := append([]byte(`{"buckets":[`), bytes.Repeat([]byte("0,"), 1<<20)...)
	big = append(big, []byte("0]}")...)
	resp, err = http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	expectJSONError(resp, http.StatusRequestEntityTooLarge, "oversized body")
}

// The handler must serialize engine access: hammer it concurrently and
// verify invariants afterwards. Run with -race in CI.
func TestHTTPConcurrentQueries(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxUpdates = 5
	srv := newTestServer(t, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				postQuery(t, srv.URL, []int{(w + i) % 6})
			}
		}(w)
	}
	wg.Wait()
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Answered != 160 {
		t.Errorf("answered %d, want 160", status.Answered)
	}
	if status.Updates > 5 {
		t.Errorf("updates %d exceeded MaxUpdates", status.Updates)
	}
}

// TestHTTPConcurrentMixedEndpoints races queries against status and
// synthetic reads — the three handlers share one engine behind one mutex,
// and -race must stay silent.
func TestHTTPConcurrentMixedEndpoints(t *testing.T) {
	srv := newTestServer(t, baseConfig())
	var wg sync.WaitGroup
	for w := 0; w < 9; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch w % 3 {
				case 0:
					postQuery(t, srv.URL, []int{(w + i) % 6})
				case 1:
					resp, err := http.Get(srv.URL + "/v1/status")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				case 2:
					resp, err := http.Get(srv.URL + "/v1/synthetic")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
}
