// Package pmw implements Private Multiplicative Weights, the interactive
// "iterative construction" use of SVT that motivates the paper's §1: a
// mediator maintains a public synthetic histogram, answers each incoming
// linear query from it for free, and only spends privacy budget — gated by
// SVT — when the synthetic answer's error exceeds a threshold.
//
// This is the Hardt-Rothblum / Gupta-Roth-Ullman construction with the
// paper's corrected SVT (Algorithm 7 via the svt package) as the gate, and
// with the §3.4 fix applied: the gated query is rᵢ = |q̃ᵢ − qᵢ(D)| with the
// noise OUTSIDE the absolute value, not the broken |q̃ᵢ − qᵢ(D) + νᵢ| form
// used in the original papers.
package pmw

import (
	"errors"
	"fmt"
	"math"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/internal/rng"
)

// ErrExhausted is returned by Answer once the engine has spent all its
// update budget; the accompanying Result still carries the synthetic
// estimate, which is free to release but no longer accuracy-checked.
var ErrExhausted = errors.New("pmw: update budget exhausted; answer is an unchecked synthetic estimate")

// Config configures an Engine.
type Config struct {
	// Histogram is the private dataset as counts per domain bucket. It is
	// copied; the engine never mutates or exposes it.
	Histogram []float64
	// Epsilon is the total privacy budget of the whole interaction.
	Epsilon float64
	// MaxUpdates is the SVT cutoff c: how many queries may be answered
	// from the real data before the engine degrades to synthetic-only.
	MaxUpdates int
	// Threshold is the error level T that triggers a real-data access:
	// queries whose synthetic estimate is (noisily) within Threshold of
	// the truth are answered for free. Must be positive.
	Threshold float64
	// UpdateFraction is the share of Epsilon reserved for the Laplace
	// releases that drive the multiplicative-weights updates; the
	// remainder powers the SVT gate. Zero means the default of 0.5.
	UpdateFraction float64
	// LearningRate is the multiplicative-weights step size η; zero means
	// the default of 0.05.
	LearningRate float64
	// Seed 0 means crypto-seeded.
	Seed uint64
}

// Result is one answered query.
type Result struct {
	// Value is the released answer (a count).
	Value float64
	// FromSynthetic reports that the answer came from the public synthetic
	// histogram (no budget spent); otherwise it is a fresh Laplace release
	// that also updated the synthetic histogram.
	FromSynthetic bool
}

// Engine is a private interactive query-answering mediator. It is not safe
// for concurrent use.
type Engine struct {
	truth          []float64 // private histogram (counts)
	synth          []float64 // public synthetic histogram (counts, same total mass)
	total          float64
	gate           *svt.Sparse
	src            *rng.Source
	eta            float64
	thresholdValue float64 // gate threshold T

	updateScale float64 // Laplace scale per update release
	epsUpdates  float64 // total budget of the Laplace update releases
	updatesLeft int
	answered    int
	updates     int
}

// New validates cfg and builds an engine. The synthetic histogram starts
// uniform with the same total mass as the data — the standard MW prior.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Histogram) < 2 {
		return nil, fmt.Errorf("pmw: histogram needs at least 2 buckets, got %d", len(cfg.Histogram))
	}
	total := 0.0
	for i, v := range cfg.Histogram {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("pmw: histogram[%d] = %v must be a finite non-negative count", i, v)
		}
		total += v
	}
	if !(total > 0) {
		return nil, fmt.Errorf("pmw: histogram is empty (zero total mass)")
	}
	if !(cfg.Epsilon > 0) || math.IsInf(cfg.Epsilon, 0) {
		return nil, fmt.Errorf("pmw: Epsilon must be positive and finite, got %v", cfg.Epsilon)
	}
	if cfg.MaxUpdates <= 0 {
		return nil, fmt.Errorf("pmw: MaxUpdates must be positive, got %d", cfg.MaxUpdates)
	}
	if !(cfg.Threshold > 0) || math.IsInf(cfg.Threshold, 0) {
		return nil, fmt.Errorf("pmw: Threshold must be positive and finite, got %v", cfg.Threshold)
	}
	uf := cfg.UpdateFraction
	if uf == 0 {
		uf = 0.5
	}
	if !(uf > 0 && uf < 1) || math.IsNaN(uf) {
		return nil, fmt.Errorf("pmw: UpdateFraction must be in (0, 1), got %v", cfg.UpdateFraction)
	}
	eta := cfg.LearningRate
	if eta == 0 {
		eta = 0.05
	}
	if !(eta > 0) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("pmw: LearningRate must be positive and finite, got %v", cfg.LearningRate)
	}
	epsUpdates := cfg.Epsilon * uf
	epsGate := cfg.Epsilon - epsUpdates
	gate, err := svt.New(svt.Options{
		Epsilon:      epsGate,
		Sensitivity:  1, // |q̃ − q(D)| changes by at most 1 per added/removed record
		MaxPositives: cfg.MaxUpdates,
		Seed:         deriveSeed(cfg.Seed, 1),
	})
	if err != nil {
		return nil, fmt.Errorf("pmw: building gate: %w", err)
	}
	truth := make([]float64, len(cfg.Histogram))
	copy(truth, cfg.Histogram)
	synth := make([]float64, len(truth))
	uniform := total / float64(len(synth))
	for i := range synth {
		synth[i] = uniform
	}
	return &Engine{
		truth:          truth,
		synth:          synth,
		total:          total,
		gate:           gate,
		src:            rng.NewSeeded(deriveSeed(cfg.Seed, 2)),
		eta:            eta,
		thresholdValue: cfg.Threshold,
		updateScale:    1 / (epsUpdates / float64(cfg.MaxUpdates)), // Δ=1 per release
		epsUpdates:     epsUpdates,
		updatesLeft:    cfg.MaxUpdates,
	}, nil
}

// deriveSeed gives the gate and the update noise independent deterministic
// streams; seed 0 stays 0 so both fall back to crypto seeding.
func deriveSeed(seed uint64, salt uint64) uint64 {
	if seed == 0 {
		return 0
	}
	return rng.New(seed+salt).Uint64() | 1
}

// Answer answers the linear counting query that sums the buckets listed in
// query (distinct indices into the histogram). It returns the synthetic
// estimate for free when the SVT gate reports the estimate accurate, and
// otherwise spends one update's budget to release a Laplace-noised true
// answer and improve the synthetic histogram.
//
// After MaxUpdates data accesses the engine answers from the synthetic
// histogram only and returns ErrExhausted alongside the estimate.
func (e *Engine) Answer(query []int) (Result, error) {
	est, truth, err := e.evaluate(query)
	if err != nil {
		return Result{}, err
	}
	e.answered++
	if e.gate.Halted() {
		return Result{Value: est, FromSynthetic: true}, ErrExhausted
	}
	// §3.4-corrected gate query: noise is added by the gate OUTSIDE |·|.
	res, err := e.gate.Next(math.Abs(est-truth), e.thresholdForGate())
	if errors.Is(err, svt.ErrHalted) {
		return Result{Value: est, FromSynthetic: true}, ErrExhausted
	}
	if err != nil {
		return Result{}, fmt.Errorf("pmw: gate: %w", err)
	}
	if !res.Above {
		return Result{Value: est, FromSynthetic: true}, nil
	}
	// Hard query: release a noisy true answer and update the weights.
	noisy := truth + e.src.Laplace(e.updateScale)
	e.updates++
	e.updatesLeft--
	e.reweight(query, noisy > est)
	return Result{Value: noisy, FromSynthetic: false}, nil
}

// thresholdForGate returns the gate threshold T.
func (e *Engine) thresholdForGate() float64 { return e.thresholdValue }

// reweight applies one multiplicative-weights step: buckets inside the
// query move up (estimate too low) or down (too high) by factor e^{±η},
// then the histogram is renormalized to the original total mass.
func (e *Engine) reweight(query []int, up bool) {
	factor := math.Exp(e.eta)
	if !up {
		factor = 1 / factor
	}
	for _, i := range query {
		e.synth[i] *= factor
	}
	mass := 0.0
	for _, v := range e.synth {
		mass += v
	}
	scale := e.total / mass
	for i := range e.synth {
		e.synth[i] *= scale
	}
}

// evaluate computes the synthetic estimate and the private true answer of
// the query, validating indices and rejecting duplicates (a duplicated
// bucket would double-count and break the sensitivity-1 argument).
func (e *Engine) evaluate(query []int) (est, truth float64, err error) {
	if len(query) == 0 {
		return 0, 0, errors.New("pmw: empty query")
	}
	seen := make(map[int]bool, len(query))
	for _, i := range query {
		if i < 0 || i >= len(e.truth) {
			return 0, 0, fmt.Errorf("pmw: bucket %d out of range [0,%d)", i, len(e.truth))
		}
		if seen[i] {
			return 0, 0, fmt.Errorf("pmw: duplicate bucket %d in query", i)
		}
		seen[i] = true
		est += e.synth[i]
		truth += e.truth[i]
	}
	return est, truth, nil
}

// Synthetic returns a copy of the current public synthetic histogram.
func (e *Engine) Synthetic() []float64 {
	out := make([]float64, len(e.synth))
	copy(out, e.synth)
	return out
}

// Answered returns the number of queries answered so far.
func (e *Engine) Answered() int { return e.answered }

// Updates returns how many real-data accesses have happened.
func (e *Engine) Updates() int { return e.updates }

// UpdatesLeft returns how many real-data accesses remain.
func (e *Engine) UpdatesLeft() int { return e.updatesLeft }

// Exhausted reports whether the engine can no longer access the real data.
func (e *Engine) Exhausted() bool { return e.gate.Halted() }

// Restore fast-forwards a freshly constructed engine's budget accounting to
// a state journaled before a crash: answered queries answered so far and
// updates real-data accesses already consumed. The SVT gate is restored
// alongside, so the interaction cannot access the real data more than
// MaxUpdates times in total across the restart. Two things are deliberately
// NOT restored: the noise streams (a recovered engine draws fresh noise)
// and the learned synthetic histogram, which restarts from the uniform
// prior — an accuracy regression, never a privacy one.
func (e *Engine) Restore(answered, updates int) error {
	if e.answered != 0 || e.updates != 0 {
		return errors.New("pmw: Restore requires a freshly constructed engine")
	}
	if updates < 0 || updates > e.updatesLeft {
		return fmt.Errorf("pmw: restored updates %d out of [0, %d]", updates, e.updatesLeft)
	}
	if answered < updates {
		return fmt.Errorf("pmw: restored answered %d below updates %d", answered, updates)
	}
	// The gate answered at least updates queries pre-crash; only its
	// positive count affects future behavior.
	if err := e.gate.Restore(updates, updates); err != nil {
		return fmt.Errorf("pmw: restoring gate: %w", err)
	}
	e.answered = answered
	e.updates = updates
	e.updatesLeft -= updates
	return nil
}

// Draws returns the positions of the engine's two noise streams: the SVT
// gate's source and the Laplace update-release source. Crash recovery
// journals both so a seeded engine can be resumed with FastForward.
func (e *Engine) Draws() (gate, update uint64) {
	return e.gate.Draws(), e.src.Draws()
}

// FastForward advances both noise streams to the absolute positions
// previously reported by Draws, discarding the skipped values. For a seeded
// engine rebuilt from its original seed — with the synthetic histogram
// restored via RestoreSynthetic — the continuation is bit-identical to an
// uninterrupted run, and no pre-crash draw is ever re-emitted. It returns an
// error if either stream is already past its target.
func (e *Engine) FastForward(gate, update uint64) error {
	if err := e.gate.FastForward(gate); err != nil {
		return fmt.Errorf("pmw: gate: %w", err)
	}
	cur := e.src.Draws()
	if update < cur {
		return fmt.Errorf("pmw: cannot fast-forward update stream to draw %d, already at %d", update, cur)
	}
	e.src.Skip(update - cur)
	return nil
}

// RestoreSynthetic replaces the public synthetic histogram with a journaled
// snapshot of it, so a recovered engine resumes from its learned
// distribution instead of restarting at the uniform prior. The values are
// copied verbatim — no renormalization — so a seeded, fast-forwarded engine
// continues bit-identically to the uninterrupted run; the journaled mass
// must agree with the engine's total up to floating-point renormalization
// slack. The synthetic histogram is derived entirely from already-released
// answers, so restoring it spends no privacy budget.
func (e *Engine) RestoreSynthetic(synth []float64) error {
	if len(synth) != len(e.synth) {
		return fmt.Errorf("pmw: restored synthetic histogram has %d buckets, want %d", len(synth), len(e.synth))
	}
	mass := 0.0
	for i, v := range synth {
		if !(v >= 0) || math.IsInf(v, 0) {
			return fmt.Errorf("pmw: restored synthetic[%d] = %v must be a finite non-negative count", i, v)
		}
		mass += v
	}
	if !(mass > 0) || math.Abs(mass-e.total) > 1e-6*e.total {
		return fmt.Errorf("pmw: restored synthetic mass %v does not match the engine total %v", mass, e.total)
	}
	copy(e.synth, synth)
	return nil
}

// Budgets returns the realized privacy-budget split of the whole
// interaction: the SVT gate's threshold and query budgets (ε₁, ε₂) and the
// total budget of the Laplace update releases as ε₃. The three sum to the
// configured Epsilon under basic composition.
func (e *Engine) Budgets() (gateEps1, gateEps2, epsUpdates float64) {
	gateEps1, gateEps2, _ = e.gate.Budgets() // the gate reserves no ε₃ of its own
	return gateEps1, gateEps2, e.epsUpdates
}
