package pmw

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func baseConfig() Config {
	return Config{
		Histogram:  []float64{100, 200, 50, 150, 400, 100},
		Epsilon:    5,
		MaxUpdates: 4,
		Threshold:  30,
		Seed:       17,
	}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"short histogram", func(c *Config) { c.Histogram = []float64{1} }},
		{"negative count", func(c *Config) { c.Histogram = []float64{1, -2} }},
		{"NaN count", func(c *Config) { c.Histogram = []float64{1, math.NaN()} }},
		{"inf count", func(c *Config) { c.Histogram = []float64{1, math.Inf(1)} }},
		{"zero mass", func(c *Config) { c.Histogram = []float64{0, 0} }},
		{"zero epsilon", func(c *Config) { c.Epsilon = 0 }},
		{"inf epsilon", func(c *Config) { c.Epsilon = math.Inf(1) }},
		{"zero updates", func(c *Config) { c.MaxUpdates = 0 }},
		{"zero threshold", func(c *Config) { c.Threshold = 0 }},
		{"neg threshold", func(c *Config) { c.Threshold = -3 }},
		{"bad update fraction", func(c *Config) { c.UpdateFraction = 1.5 }},
		{"neg update fraction", func(c *Config) { c.UpdateFraction = -0.5 }},
		{"neg learning rate", func(c *Config) { c.LearningRate = -1 }},
	}
	for _, c := range cases {
		cfg := baseConfig()
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSyntheticStartsUniform(t *testing.T) {
	e := mustNew(t, baseConfig())
	synth := e.Synthetic()
	want := 1000.0 / 6
	for i, v := range synth {
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("synth[%d] = %v, want %v", i, v, want)
		}
	}
	// The copy must not alias internal state.
	synth[0] = -1
	if e.Synthetic()[0] == -1 {
		t.Error("Synthetic exposed internal state")
	}
}

func TestAnswerValidation(t *testing.T) {
	e := mustNew(t, baseConfig())
	if _, err := e.Answer(nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := e.Answer([]int{0, 6}); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	if _, err := e.Answer([]int{-1}); err == nil {
		t.Error("negative bucket accepted")
	}
	if _, err := e.Answer([]int{1, 1}); err == nil {
		t.Error("duplicate bucket accepted")
	}
	if e.Answered() != 0 {
		t.Errorf("invalid queries counted: %d", e.Answered())
	}
}

func TestEasyQueriesAreFree(t *testing.T) {
	// The whole-domain query always has synthetic estimate == truth
	// (both equal total mass), so it should essentially always be free.
	e := mustNew(t, baseConfig())
	for i := 0; i < 50; i++ {
		res, err := e.Answer([]int{0, 1, 2, 3, 4, 5})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !res.FromSynthetic {
			t.Fatalf("query %d consumed budget for a zero-error query", i)
		}
		if math.Abs(res.Value-1000) > 1e-9 {
			t.Fatalf("query %d value %v, want 1000", i, res.Value)
		}
	}
	if e.Updates() != 0 {
		t.Errorf("free queries triggered %d updates", e.Updates())
	}
	if e.Answered() != 50 {
		t.Errorf("Answered = %d", e.Answered())
	}
}

func TestHardQueryTriggersUpdateAndImproves(t *testing.T) {
	// Bucket 4 holds 400 of 1000; uniform prior says 166.7 — error 233
	// far above threshold 30, so the first ask must hit the data.
	e := mustNew(t, baseConfig())
	res, err := e.Answer([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromSynthetic {
		t.Fatal("hard query answered from synthetic")
	}
	// Noise scale is 1/(2.5/4) = 1.6; the answer must be near 400.
	if math.Abs(res.Value-400) > 30 {
		t.Fatalf("noisy answer %v far from 400", res.Value)
	}
	if e.Updates() != 1 || e.UpdatesLeft() != 3 {
		t.Fatalf("updates = %d, left = %d", e.Updates(), e.UpdatesLeft())
	}
	// The update must have moved the synthetic histogram toward the truth.
	if got := e.Synthetic()[4]; got <= 1000.0/6 {
		t.Errorf("synthetic[4] = %v did not increase", got)
	}
}

func TestRepeatedHardQueryConverges(t *testing.T) {
	// Asking the same under-estimated query repeatedly must keep nudging
	// the synthetic histogram until the estimate is within threshold and
	// answers become free.
	cfg := baseConfig()
	cfg.MaxUpdates = 30
	cfg.Epsilon = 30
	cfg.LearningRate = 0.2
	e := mustNew(t, cfg)
	free := false
	for i := 0; i < 60; i++ {
		res, err := e.Answer([]int{4})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.FromSynthetic {
			free = true
			break
		}
	}
	if !free {
		t.Fatal("synthetic histogram never converged to a free answer")
	}
	if math.Abs(e.Synthetic()[4]-400) > 100 {
		t.Errorf("synthetic[4] = %v, want near 400", e.Synthetic()[4])
	}
}

func TestMassConservation(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxUpdates = 10
	e := mustNew(t, cfg)
	queries := [][]int{{4}, {0, 1}, {2}, {3, 5}, {1, 4}}
	for i := 0; i < 20; i++ {
		if _, err := e.Answer(queries[i%len(queries)]); err != nil && !errors.Is(err, ErrExhausted) {
			t.Fatal(err)
		}
	}
	mass := 0.0
	for _, v := range e.Synthetic() {
		mass += v
	}
	if math.Abs(mass-1000) > 1e-6 {
		t.Fatalf("synthetic mass %v, want 1000", mass)
	}
}

func TestExhaustionReturnsErrExhausted(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxUpdates = 2
	cfg.Threshold = 1 // nearly every query is "hard"
	e := mustNew(t, cfg)
	sawExhausted := false
	for i := 0; i < 40; i++ {
		_, err := e.Answer([]int{i % 6})
		if errors.Is(err, ErrExhausted) {
			sawExhausted = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawExhausted {
		t.Fatal("engine never exhausted despite tiny budget and threshold")
	}
	if !e.Exhausted() {
		t.Error("Exhausted() false after ErrExhausted")
	}
	// Post-exhaustion answers still work, flagged.
	res, err := e.Answer([]int{0})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-exhaustion error = %v", err)
	}
	if !res.FromSynthetic {
		t.Error("post-exhaustion answer not synthetic")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		e := mustNew(t, baseConfig())
		var out []float64
		for i := 0; i < 15; i++ {
			res, err := e.Answer([]int{i % 6})
			if err != nil && !errors.Is(err, ErrExhausted) {
				t.Fatal(err)
			}
			out = append(out, res.Value)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at query %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: whatever the query sequence, the number of data accesses never
// exceeds MaxUpdates and synthetic mass is conserved.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed uint64, queriesRaw []uint8) bool {
		cfg := Config{
			Histogram:  []float64{10, 40, 5, 25, 20},
			Epsilon:    2,
			MaxUpdates: 3,
			Threshold:  5,
			Seed:       seed | 1,
		}
		e, err := New(cfg)
		if err != nil {
			return false
		}
		for _, q := range queriesRaw {
			_, err := e.Answer([]int{int(q) % 5})
			if err != nil && !errors.Is(err, ErrExhausted) {
				return false
			}
		}
		if e.Updates() > cfg.MaxUpdates {
			return false
		}
		mass := 0.0
		for _, v := range e.Synthetic() {
			mass += v
		}
		return math.Abs(mass-100) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFastForwardResumesBitIdentical(t *testing.T) {
	cfg := Config{
		Histogram:  []float64{120, 40, 260, 10, 75, 95},
		Epsilon:    2,
		MaxUpdates: 6,
		Threshold:  15,
		Seed:       77,
	}
	queries := make([][]int, 40)
	for i := range queries {
		queries[i] = []int{i % 6, (i + 2) % 6}
	}
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for _, q := range queries {
		res, err := full.Answer(q)
		if err != nil && err != ErrExhausted {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Interrupted twin: crash after 15 queries, "journal" the engine state,
	// rebuild from the seed, restore accounting + synthetic + positions.
	crashed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const kill = 15
	for _, q := range queries[:kill] {
		if _, err := crashed.Answer(q); err != nil && err != ErrExhausted {
			t.Fatal(err)
		}
	}
	gate, update := crashed.Draws()
	answered, updates := crashed.Answered(), crashed.Updates()
	synth := crashed.Synthetic()
	if updates == 0 {
		t.Fatal("setup: no updates before the crash; the test would be vacuous")
	}

	rebuilt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Restore(answered, updates); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.RestoreSynthetic(synth); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.FastForward(gate, update); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[kill:] {
		res, err := rebuilt.Answer(q)
		if err != nil && err != ErrExhausted {
			t.Fatal(err)
		}
		if res != want[kill+i] {
			t.Fatalf("answer %d diverged after fast-forward: got %+v, want %+v", kill+i, res, want[kill+i])
		}
	}
}

func TestEngineFastForwardRejectsRewind(t *testing.T) {
	e, err := New(Config{Histogram: []float64{10, 20}, Epsilon: 1, MaxUpdates: 2, Threshold: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gate, update := e.Draws()
	if gate == 0 {
		t.Fatal("gate construction consumed no draws")
	}
	if err := e.FastForward(gate-1, update); err == nil {
		t.Fatal("rewinding the gate stream succeeded")
	}
}

func TestRestoreSyntheticValidates(t *testing.T) {
	e, err := New(Config{Histogram: []float64{10, 20, 30}, Epsilon: 1, MaxUpdates: 2, Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreSynthetic([]float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := e.RestoreSynthetic([]float64{-1, 30, 31}); err == nil {
		t.Fatal("negative bucket accepted")
	}
	if err := e.RestoreSynthetic([]float64{1, 1, 1}); err == nil {
		t.Fatal("mass mismatch accepted")
	}
	if err := e.RestoreSynthetic([]float64{30, 10, 20}); err != nil {
		t.Fatalf("valid synthetic rejected: %v", err)
	}
}
