package store_test

// The fault case of the store crash matrix: a WAL wrapped in
// internal/fault with scripted append failures, crashed (handle
// abandoned, no Close) and recovered. The contract under test is the
// acked-implies-durable half of the journal invariant from the store's
// point of view: an append that returned nil is on disk, an append that
// returned an injected error never is — no partial or reordered
// residue. This file is external (package store_test) because
// internal/fault imports store.

import (
	"errors"
	"fmt"
	"testing"

	"github.com/dpgo/svt/internal/fault"
	"github.com/dpgo/svt/store"
)

func TestFaultStoreCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	wal, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Appends 3, 4 and 7 fail; everything else goes through.
	sched := fault.NewSchedule(7,
		fault.Rule{Op: fault.OpAppend, After: 2, Count: 2, Err: fault.ErrInjected},
		fault.Rule{Op: fault.OpAppend, After: 6, Count: 1, Err: fault.ErrInjected},
	)
	st := fault.Wrap(wal, sched)

	var acked []store.Event
	for i := 0; i < 10; i++ {
		e := store.Event{Kind: 1, ID: "s", Data: []byte(fmt.Sprintf("ev-%d", i))}
		err := st.Append(e)
		switch {
		case err == nil:
			acked = append(acked, e)
		case errors.Is(err, fault.ErrInjected):
			// Refused before reaching the WAL: must not be durable.
		default:
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if len(acked) != 7 {
		t.Fatalf("acked %d appends, want 7 (three injected failures)", len(acked))
	}
	// Crash: abandon the handle without Close. SyncAlways means every
	// acked append is already on disk.

	w2, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("recovered %d events, want %d", len(got), len(acked))
	}
	for i := range got {
		if got[i].Kind != acked[i].Kind || got[i].ID != acked[i].ID || string(got[i].Data) != string(acked[i].Data) {
			t.Fatalf("recovered[%d] = %+v, want %+v", i, got[i], acked[i])
		}
	}
}

// TestFaultStoreBatchCrashMatrix: the batch path through the wrapper
// keeps AppendAll's atomicity — an injected batch failure leaves none of
// the batch durable, and an acked batch survives a crash whole.
func TestFaultStoreBatchCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	wal, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	sched := fault.NewSchedule(7,
		fault.Rule{Op: fault.OpAppendBatch, After: 0, Count: 1, Err: fault.ErrInjected},
	)
	st := fault.Wrap(wal, sched)

	batch := func(tag string) []store.Event {
		return []store.Event{
			{Kind: 1, ID: "a", Data: []byte(tag + "-1")},
			{Kind: 2, ID: "a", Data: []byte(tag + "-2")},
		}
	}
	if err := store.AppendAll(st, batch("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first batch = %v, want ErrInjected", err)
	}
	if err := store.AppendAll(st, batch("acked")); err != nil {
		t.Fatalf("second batch: %v", err)
	}
	// Crash without Close, reopen, recover.
	w2, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := batch("acked")
	if len(got) != len(want) {
		t.Fatalf("recovered %d events, want %d (failed batch must leave nothing)", len(got), len(want))
	}
	for i := range got {
		if string(got[i].Data) != string(want[i].Data) {
			t.Fatalf("recovered[%d] = %q, want %q", i, got[i].Data, want[i].Data)
		}
	}
}
