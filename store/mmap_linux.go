//go:build linux

package store

// Memory-mapped journal segments. Appending to the journal through a
// MAP_SHARED mapping hands the bytes to the kernel with a memcpy instead
// of a write(2): the durability guarantee is identical — dirty pages in
// the page cache survive a process crash exactly like write()-ed bytes,
// and a machine crash loses whatever the sync policy had not yet flushed —
// but the hot path costs ~100ns instead of a syscall. msync replaces
// fsync; fallocate backs every mapped byte with real blocks so a full disk
// surfaces as a clean grow-time error instead of a SIGBUS mid-copy.

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports that this platform builds the mmap fast path; the
// WAL silently falls back to write() journaling where it is false or where
// mapping fails at runtime (e.g. a filesystem without fallocate).
const mmapSupported = true

// mmapChunk is the granularity journal segments are sized (and grown) by.
// Variable so tests can force growth cheaply.
var mmapChunk = int64(4 << 20)

// mmapRegion is one live file mapping; zero value means inactive.
type mmapRegion struct {
	buf []byte
}

func (r *mmapRegion) active() bool { return r.buf != nil }

// mapSegment sizes f to at least size bytes (rounded up to the chunk,
// block-backed via fallocate) and maps it shared read-write.
func mapSegment(f *os.File, size int64) (mmapRegion, error) {
	want := ((size + mmapChunk - 1) / mmapChunk) * mmapChunk
	if want == 0 {
		want = mmapChunk
	}
	if err := syscall.Fallocate(int(f.Fd()), 0, 0, want); err != nil {
		return mmapRegion{}, fmt.Errorf("store: reserving journal blocks: %w", err)
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(want), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return mmapRegion{}, fmt.Errorf("store: mapping journal: %w", err)
	}
	return mmapRegion{buf: buf}, nil
}

// sync flushes the mapping's dirty pages to disk (the msync analog of
// fsync on the write() path).
func (r *mmapRegion) sync() error {
	if !r.active() {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&r.buf[0])), uintptr(len(r.buf)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("store: msync: %w", errno)
	}
	return nil
}

// unmap releases the mapping; the region becomes inactive.
func (r *mmapRegion) unmap() error {
	if !r.active() {
		return nil
	}
	buf := r.buf
	r.buf = nil
	if err := syscall.Munmap(buf); err != nil {
		return fmt.Errorf("store: munmap: %w", err)
	}
	return nil
}
