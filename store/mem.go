package store

import "sync/atomic"

// Mem is the no-op SessionStore: events are acknowledged and discarded, and
// Recover always returns an empty stream. It preserves the historical
// purely-in-memory behavior of the server while exercising the same
// journaling code path as a durable backend, and it is the backend the
// in-memory benchmarks measure.
type Mem struct {
	appends   atomic.Uint64
	snapshots atomic.Uint64
	closed    atomic.Bool
}

var _ SessionStore = (*Mem)(nil)
var _ BatchAppender = (*Mem)(nil)
var _ Healther = (*Mem)(nil)

// NewMem returns a ready no-op store.
func NewMem() *Mem { return &Mem{} }

// Append implements SessionStore by discarding the event.
func (m *Mem) Append(Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.appends.Add(1)
	return nil
}

// AppendBatch implements BatchAppender by discarding the events.
func (m *Mem) AppendBatch(evs []Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.appends.Add(uint64(len(evs)))
	return nil
}

// Snapshot implements SessionStore by discarding the state.
func (m *Mem) Snapshot([]Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.snapshots.Add(1)
	return nil
}

// Recover implements SessionStore: there is never anything to replay.
func (m *Mem) Recover() ([]Event, error) { return nil, nil }

// Close implements SessionStore.
func (m *Mem) Close() error {
	m.closed.Store(true)
	return nil
}

// Health implements Healther.
func (m *Mem) Health() Health {
	return Health{
		Backend:   "mem",
		Appends:   m.appends.Load(),
		Snapshots: m.snapshots.Load(),
	}
}
