package store

import (
	"sync/atomic"
	"time"
)

// Mem is the no-op SessionStore: events are acknowledged and discarded, and
// Recover always returns an empty stream. It preserves the historical
// purely-in-memory behavior of the server while exercising the same
// journaling code path as a durable backend, and it is the backend the
// in-memory benchmarks measure.
type Mem struct {
	appends   atomic.Uint64
	snapshots atomic.Uint64
	closed    atomic.Bool

	// instOn/instTick mirror the WAL's sampled append instrumentation so
	// the two backends report through the same hook; a Mem append is a
	// pair of atomics, so its "latency" mostly measures the hook itself,
	// but keeping the series populated lets dashboards built against one
	// backend work against the other.
	inst     Instrumenter
	instOn   atomic.Bool
	instTick atomic.Uint64
}

var _ SessionStore = (*Mem)(nil)
var _ BatchAppender = (*Mem)(nil)
var _ Healther = (*Mem)(nil)
var _ Instrumented = (*Mem)(nil)

// NewMem returns a ready no-op store.
func NewMem() *Mem { return &Mem{} }

// SetInstrumenter implements Instrumented; like the WAL's, it must be
// attached before concurrent use. Mem recovers nothing, has no flushes
// and reports an empty recovery immediately.
func (m *Mem) SetInstrumenter(i Instrumenter) {
	m.inst = i
	m.instOn.Store(i != nil)
	if i != nil {
		i.RecoveryObserved(0, 0)
	}
}

// Append implements SessionStore by discarding the event.
func (m *Mem) Append(Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if m.instOn.Load() && m.instTick.Add(1)&(appendSamplePeriod-1) == 0 {
		start := time.Now()
		m.appends.Add(1)
		m.inst.AppendSampled(time.Since(start), appendSamplePeriod)
		return nil
	}
	m.appends.Add(1)
	return nil
}

// AppendBatch implements BatchAppender by discarding the events.
func (m *Mem) AppendBatch(evs []Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if m.instOn.Load() && m.instTick.Add(1)&(appendSamplePeriod-1) == 0 {
		start := time.Now()
		m.appends.Add(uint64(len(evs)))
		m.inst.AppendSampled(time.Since(start), appendSamplePeriod)
		return nil
	}
	m.appends.Add(uint64(len(evs)))
	return nil
}

// Snapshot implements SessionStore by discarding the state.
func (m *Mem) Snapshot([]Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.snapshots.Add(1)
	return nil
}

// Recover implements SessionStore: there is never anything to replay.
func (m *Mem) Recover() ([]Event, error) { return nil, nil }

// Close implements SessionStore.
func (m *Mem) Close() error {
	m.closed.Store(true)
	return nil
}

// Health implements Healther.
func (m *Mem) Health() Health {
	return Health{
		Backend:   "mem",
		Appends:   m.appends.Load(),
		Snapshots: m.snapshots.Load(),
	}
}
