package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record format, shared by journal segments and snapshot files:
//
//	| length uint32 LE | crc uint32 LE | payload (length bytes) |
//
// where crc is the CRC-32C (Castagnoli) checksum of the payload and the
// payload encodes one Event:
//
//	| kind byte | idLen uvarint | id (idLen bytes) | data (rest) |
//
// The length prefix lets recovery skip to the next record without parsing
// the payload; the checksum detects torn or bit-rotted records. A record
// whose prefix or payload extends past the end of the file is a truncated
// tail — the expected artifact of a crash mid-write — and recovery drops it.

const (
	// recordHeaderSize is the fixed prefix: length + crc.
	recordHeaderSize = 8
	// MaxRecordSize caps a single record's payload, bounding what a hostile
	// or corrupted length prefix can make recovery allocate.
	MaxRecordSize = 16 << 20
)

// castagnoli is the CRC-32C table used for all record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// batchKind is the reserved record kind framing an atomic batch of events
// (AppendBatch): the record's payload carries the sub-events back to back,
// and the record-level CRC covers them all, so a torn batch fails the
// checksum as a unit and recovery drops it whole — a partial batch can
// never replay. Application events must not use this kind.
const batchKind byte = 0xff

// Record-decoding error sentinels. ErrTruncatedRecord means the buffer ends
// mid-record (a torn tail); ErrCorruptRecord means the bytes are complete
// but wrong (checksum mismatch, oversized length, malformed payload).
var (
	ErrTruncatedRecord = errors.New("store: truncated record")
	ErrCorruptRecord   = errors.New("store: corrupt record")
)

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// recordSize returns the exact framed size appendRecord would produce for
// ev, so the mmap append path can reserve precisely that many bytes and
// encode in place.
//
//svt:hotpath
func recordSize(ev Event) int {
	return recordHeaderSize + 1 + uvarintLen(uint64(len(ev.ID))) + len(ev.ID) + len(ev.Data)
}

// batchRecordSize is recordSize for the batch frame appendBatchRecord
// would produce.
//
//svt:hotpath
func batchRecordSize(evs []Event) int {
	n := recordHeaderSize + 1 + 1 // header, batchKind, empty-id uvarint
	for _, ev := range evs {
		n += 1 + uvarintLen(uint64(len(ev.ID))) + len(ev.ID) + uvarintLen(uint64(len(ev.Data))) + len(ev.Data)
	}
	return n
}

// appendRecord encodes ev as one framed record appended to buf.
//
//svt:hotpath
func appendRecord(buf []byte, ev Event) ([]byte, error) {
	payloadLen := 1 + binary.MaxVarintLen64 + len(ev.ID) + len(ev.Data)
	if payloadLen > MaxRecordSize {
		return buf, fmt.Errorf("store: event of %d bytes exceeds the record cap of %d", payloadLen, MaxRecordSize)
	}
	if ev.Kind == 0 {
		return buf, fmt.Errorf("store: event kind 0 is reserved")
	}
	if ev.Kind == batchKind {
		return buf, fmt.Errorf("store: event kind %d is reserved for batch frames", batchKind)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, ev.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(ev.ID)))
	buf = append(buf, ev.ID...)
	buf = append(buf, ev.Data...)
	payload := buf[start+recordHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// appendBatchRecord encodes evs as ONE framed batch record appended to buf.
// Payload layout after the batchKind byte and an empty id:
//
//	| kind byte | idLen uvarint | id | dataLen uvarint | data |  × len(evs)
//
// On error buf is returned unchanged, so callers encoding into a shared
// group-commit buffer never leave half a frame behind.
//
//svt:hotpath
func appendBatchRecord(buf []byte, evs []Event) ([]byte, error) {
	if len(evs) == 0 {
		return buf, fmt.Errorf("store: empty batch")
	}
	payloadLen := 1 + binary.MaxVarintLen64
	for _, ev := range evs {
		if ev.Kind == 0 || ev.Kind == batchKind {
			return buf, fmt.Errorf("store: event kind %d is reserved", ev.Kind)
		}
		payloadLen += 1 + 2*binary.MaxVarintLen64 + len(ev.ID) + len(ev.Data)
	}
	if payloadLen > MaxRecordSize {
		return buf, fmt.Errorf("store: batch of %d bytes exceeds the record cap of %d", payloadLen, MaxRecordSize)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, batchKind)
	buf = binary.AppendUvarint(buf, 0) // batch frames carry no id of their own
	for _, ev := range evs {
		buf = append(buf, ev.Kind)
		buf = binary.AppendUvarint(buf, uint64(len(ev.ID)))
		buf = append(buf, ev.ID...)
		buf = binary.AppendUvarint(buf, uint64(len(ev.Data)))
		buf = append(buf, ev.Data...)
	}
	payload := buf[start+recordHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// interner deduplicates decoded event IDs: a session that journaled ten
// thousand progress records yields ONE id string on recovery, not ten
// thousand copies. The map lookup keyed by string(b) is allocation-free on
// a hit (the compiler elides the conversion); a nil interner just converts.
type interner map[string]string

func (in interner) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in[string(b)]; ok {
		return s
	}
	s := string(b)
	if in != nil {
		in[s] = s
	}
	return s
}

// walkBatchPayload steps through a batch frame's sub-events, calling emit
// for each when non-nil. With a nil emit it is a pure, allocation-free
// validation pass — what decodeRecord uses, so recovery builds the events
// only once (in decodeAll). Emitted events alias data (see decodeRecord).
func walkBatchPayload(data []byte, in interner, emit func(Event)) error {
	if len(data) == 0 {
		return fmt.Errorf("%w: empty batch frame", ErrCorruptRecord)
	}
	for len(data) > 0 {
		kind := data[0]
		if kind == 0 || kind == batchKind {
			return fmt.Errorf("%w: reserved kind %d inside batch frame", ErrCorruptRecord, kind)
		}
		data = data[1:]
		idLen, n := binary.Uvarint(data)
		if n <= 0 || idLen > uint64(len(data)-n) {
			return fmt.Errorf("%w: bad id length in batch frame", ErrCorruptRecord)
		}
		idRaw := data[n : n+int(idLen)]
		data = data[n+int(idLen):]
		dataLen, n := binary.Uvarint(data)
		if n <= 0 || dataLen > uint64(len(data)-n) {
			return fmt.Errorf("%w: bad data length in batch frame", ErrCorruptRecord)
		}
		if emit != nil {
			ev := Event{Kind: kind, ID: in.str(idRaw)}
			if dataLen > 0 {
				ev.Data = data[n : n+int(dataLen) : n+int(dataLen)]
			}
			emit(ev)
		}
		data = data[n+int(dataLen):]
	}
	return nil
}

// decodeBatchPayload parses a batch frame's sub-events (the Data of a
// batchKind record, already CRC-verified at the record layer). Events
// alias data; see decodeRecord.
func decodeBatchPayload(data []byte, in interner) ([]Event, error) {
	var evs []Event
	if err := walkBatchPayload(data, in, func(ev Event) { evs = append(evs, ev) }); err != nil {
		return nil, err
	}
	return evs, nil
}

// decodeRecord decodes the first record in b, returning the event and the
// number of bytes consumed. A batchKind event's Data is the still-framed
// batch payload (validated here; decodeAll expands it). It returns
// ErrTruncatedRecord when b ends mid-record and ErrCorruptRecord when the
// record is complete but invalid.
//
// The returned event's Data ALIASES b — no copy — so callers must keep b
// alive and unmodified as long as the event is retained. Recovery satisfies
// this for free: the segment bytes come from os.ReadFile and the aliasing
// events in w.recovered keep the buffer reachable. IDs are deduplicated
// through in (nil disables interning).
//
//svt:hotpath
func decodeRecord(b []byte, in interner) (Event, int, error) {
	if len(b) < recordHeaderSize {
		return Event{}, 0, ErrTruncatedRecord
	}
	length := binary.LittleEndian.Uint32(b)
	if length > MaxRecordSize {
		return Event{}, 0, fmt.Errorf("%w: length %d exceeds cap %d", ErrCorruptRecord, length, MaxRecordSize)
	}
	if uint64(len(b)) < recordHeaderSize+uint64(length) {
		return Event{}, 0, ErrTruncatedRecord
	}
	payload := b[recordHeaderSize : recordHeaderSize+length]
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Event{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	if len(payload) == 0 {
		return Event{}, 0, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	kind := payload[0]
	if kind == 0 {
		return Event{}, 0, fmt.Errorf("%w: reserved kind 0", ErrCorruptRecord)
	}
	idLen, n := binary.Uvarint(payload[1:])
	if n <= 0 || idLen > uint64(len(payload)-1-n) {
		return Event{}, 0, fmt.Errorf("%w: bad id length", ErrCorruptRecord)
	}
	rest := payload[1+n:]
	ev := Event{Kind: kind, ID: in.str(rest[:idLen])}
	if data := rest[idLen:]; len(data) > 0 {
		ev.Data = data[:len(data):len(data)]
	}
	if kind == batchKind {
		if len(ev.ID) != 0 {
			return Event{}, 0, fmt.Errorf("%w: batch frame carries an id", ErrCorruptRecord)
		}
		if err := walkBatchPayload(ev.Data, nil, nil); err != nil {
			return Event{}, 0, err
		}
	}
	return ev, recordHeaderSize + int(length), nil
}

// decodeAll decodes consecutive records from b, expanding batch frames into
// their sub-events. It returns the events of the valid prefix, the byte
// length of that prefix, and the error that stopped the scan (nil when b
// was consumed exactly). The events alias b (see decodeRecord) and share
// one id interner, so a long journal of per-session progress records costs
// one string per distinct session, not one per record.
func decodeAll(b []byte) ([]Event, int, error) {
	var events []Event
	in := make(interner)
	off := 0
	for off < len(b) {
		ev, n, err := decodeRecord(b[off:], in)
		if err != nil {
			return events, off, err
		}
		if ev.Kind == batchKind {
			sub, berr := decodeBatchPayload(ev.Data, in)
			if berr != nil {
				// Unreachable: decodeRecord validated the frame.
				return events, off, berr
			}
			events = append(events, sub...)
		} else {
			events = append(events, ev)
		}
		off += n
	}
	return events, off, nil
}
