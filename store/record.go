package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record format, shared by journal segments and snapshot files:
//
//	| length uint32 LE | crc uint32 LE | payload (length bytes) |
//
// where crc is the CRC-32C (Castagnoli) checksum of the payload and the
// payload encodes one Event:
//
//	| kind byte | idLen uvarint | id (idLen bytes) | data (rest) |
//
// The length prefix lets recovery skip to the next record without parsing
// the payload; the checksum detects torn or bit-rotted records. A record
// whose prefix or payload extends past the end of the file is a truncated
// tail — the expected artifact of a crash mid-write — and recovery drops it.

const (
	// recordHeaderSize is the fixed prefix: length + crc.
	recordHeaderSize = 8
	// MaxRecordSize caps a single record's payload, bounding what a hostile
	// or corrupted length prefix can make recovery allocate.
	MaxRecordSize = 16 << 20
)

// castagnoli is the CRC-32C table used for all record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record-decoding error sentinels. ErrTruncatedRecord means the buffer ends
// mid-record (a torn tail); ErrCorruptRecord means the bytes are complete
// but wrong (checksum mismatch, oversized length, malformed payload).
var (
	ErrTruncatedRecord = errors.New("store: truncated record")
	ErrCorruptRecord   = errors.New("store: corrupt record")
)

// appendRecord encodes ev as one framed record appended to buf.
func appendRecord(buf []byte, ev Event) ([]byte, error) {
	payloadLen := 1 + binary.MaxVarintLen64 + len(ev.ID) + len(ev.Data)
	if payloadLen > MaxRecordSize {
		return buf, fmt.Errorf("store: event of %d bytes exceeds the record cap of %d", payloadLen, MaxRecordSize)
	}
	if ev.Kind == 0 {
		return buf, fmt.Errorf("store: event kind 0 is reserved")
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, ev.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(ev.ID)))
	buf = append(buf, ev.ID...)
	buf = append(buf, ev.Data...)
	payload := buf[start+recordHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// decodeRecord decodes the first record in b, returning the event and the
// number of bytes consumed. It returns ErrTruncatedRecord when b ends
// mid-record and ErrCorruptRecord when the record is complete but invalid.
func decodeRecord(b []byte) (Event, int, error) {
	if len(b) < recordHeaderSize {
		return Event{}, 0, ErrTruncatedRecord
	}
	length := binary.LittleEndian.Uint32(b)
	if length > MaxRecordSize {
		return Event{}, 0, fmt.Errorf("%w: length %d exceeds cap %d", ErrCorruptRecord, length, MaxRecordSize)
	}
	if uint64(len(b)) < recordHeaderSize+uint64(length) {
		return Event{}, 0, ErrTruncatedRecord
	}
	payload := b[recordHeaderSize : recordHeaderSize+length]
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Event{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	if len(payload) == 0 {
		return Event{}, 0, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	kind := payload[0]
	if kind == 0 {
		return Event{}, 0, fmt.Errorf("%w: reserved kind 0", ErrCorruptRecord)
	}
	idLen, n := binary.Uvarint(payload[1:])
	if n <= 0 || idLen > uint64(len(payload)-1-n) {
		return Event{}, 0, fmt.Errorf("%w: bad id length", ErrCorruptRecord)
	}
	rest := payload[1+n:]
	ev := Event{Kind: kind, ID: string(rest[:idLen])}
	if data := rest[idLen:]; len(data) > 0 {
		ev.Data = append([]byte(nil), data...)
	}
	return ev, recordHeaderSize + int(length), nil
}

// decodeAll decodes consecutive records from b. It returns the events of
// the valid prefix, the byte length of that prefix, and the error that
// stopped the scan (nil when b was consumed exactly).
func decodeAll(b []byte) ([]Event, int, error) {
	var events []Event
	off := 0
	for off < len(b) {
		ev, n, err := decodeRecord(b[off:])
		if err != nil {
			return events, off, err
		}
		events = append(events, ev)
		off += n
	}
	return events, off, nil
}
