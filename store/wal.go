package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when the WAL backend calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged event survives
	// both a process crash and a machine crash. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes every append to the kernel immediately (so a
	// process crash loses nothing) and fsyncs on a background interval, so a
	// machine crash loses at most one interval of events.
	SyncInterval
	// SyncNone never fsyncs explicitly; the kernel flushes at its leisure.
	// A process crash still loses nothing — appends are unbuffered writes —
	// but a machine crash may lose recently acknowledged events.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spellings "always", "interval" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or none)", s)
	}
}

// WALConfig configures a WAL store.
type WALConfig struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval;
	// 0 means DefaultSyncInterval.
	SyncInterval time.Duration
}

// DefaultSyncInterval is the background fsync cadence when WALConfig leaves
// SyncInterval zero.
const DefaultSyncInterval = 100 * time.Millisecond

// File layout inside WALConfig.Dir. Each snapshot starts a new generation
// g: "snap-<g>.log" holds the full-state baseline and "wal-<g>.log" the
// events appended since. Snapshots are two-phase: rotation opens wal-<g>
// first (appends continue there immediately), then the baseline snap-<g> is
// written to a ".tmp" file and atomically renamed — so a visible snapshot is
// always complete, and a crash (or commit failure) between the two phases
// leaves a multi-segment chain: the previous snapshot plus every newer
// wal segment, which recovery replays in generation order. Generations
// older than the newest snapshot and leftover temp files are removed on
// open.
const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	segSuffix  = ".log"
	tmpSuffix  = ".tmp"
)

func segName(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%016d%s", prefix, gen, segSuffix)
}

// parseSeg extracts the generation from a segment name with the given
// prefix, reporting whether the name matched.
func parseSeg(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), segSuffix), 10, 64)
	return gen, err == nil
}

// WAL is the durable SessionStore: an append-only journal of CRC-checked,
// length-prefixed records with snapshot compaction.
//
// Durability model: Append writes the record to the journal file with a
// single unbuffered write — once Append returns, the event survives a
// process crash regardless of sync policy; the policy only decides how much
// a machine (power) crash can lose. Recovery tolerates a torn final record
// (truncating the tail) but refuses corrupt snapshots: a snapshot is
// rename-atomic, so damage there means disk trouble an operator must see.
type WAL struct {
	dir  string
	sync SyncPolicy

	mu          sync.Mutex
	f           *os.File // active journal segment
	gen         uint64   // active journal segment generation
	snapGen     uint64   // latest published snapshot generation; 0 = none
	segments    int      // live journal segments (gen chain since snapGen)
	snapPending bool     // a rotation is between Rotate and Commit/Abort
	closed      bool
	broken      bool // journal offset unknown after a failed rollback; all writes refused
	scratch     []byte
	walBytes    uint64
	recovered   []Event

	flushStop chan struct{}
	flushDone chan struct{}

	// Counters surfaced by Health; guarded by mu.
	appends        uint64
	appendedBytes  uint64
	syncs          uint64
	failures       uint64
	lastErr        string
	snapshots      uint64
	snapshotEvents uint64
	truncatedTail  bool
	droppedBytes   uint64
}

var _ SessionStore = (*WAL)(nil)
var _ Healther = (*WAL)(nil)
var _ Rotator = (*WAL)(nil)

// NewWAL opens (or initializes) the journal directory, replays the latest
// snapshot plus journal into memory for Recover, truncates any torn tail so
// new appends start from a clean record boundary, and removes stale
// generations and temp files.
func NewWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: WAL requires a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating WAL dir: %w", err)
	}
	w := &WAL{dir: cfg.Dir, sync: cfg.Sync}
	if err := w.open(); err != nil {
		return nil, err
	}
	if w.sync == SyncInterval {
		interval := cfg.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(interval)
	}
	return w, nil
}

// open scans the directory, picks the newest complete snapshot as the
// baseline, replays it plus every newer journal segment in generation
// order, and opens the newest segment for appending.
//
// More than one journal segment is the expected signature of a crash (or a
// persistent write failure) between a two-phase snapshot's rotation and its
// commit: wal-<g+1> exists but snap-<g+1> does not, so the previous
// generation's snapshot stays authoritative and both segments replay after
// it. Nothing acknowledged is lost in that window.
func (w *WAL) open() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("store: reading WAL dir: %w", err)
	}
	var snaps, wals []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A temp file is an interrupted snapshot baseline write; the
			// previous generation is still authoritative.
			_ = os.Remove(filepath.Join(w.dir, name))
			continue
		}
		if gen, ok := parseSeg(name, snapPrefix); ok {
			snaps = append(snaps, gen)
		}
		if gen, ok := parseSeg(name, walPrefix); ok {
			wals = append(wals, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	// The baseline is the newest snapshot; its generation and every newer
	// journal segment replay. With no snapshot yet the chain starts at the
	// oldest journal segment (generation 1 on a fresh directory).
	if len(snaps) > 0 {
		w.snapGen = snaps[len(snaps)-1]
		snapPath := filepath.Join(w.dir, segName(snapPrefix, w.snapGen))
		raw, err := os.ReadFile(snapPath)
		if err != nil {
			return fmt.Errorf("store: reading snapshot: %w", err)
		}
		events, _, err := decodeAll(raw)
		if err != nil {
			// Snapshots are written whole and rename-atomic: damage here is
			// disk corruption, and silently dropping sessions would forget
			// spent privacy budget. Refuse to start.
			return fmt.Errorf("store: snapshot %s is corrupt: %w", snapPath, err)
		}
		w.recovered = events
	}

	// Collect the replay chain: every journal segment at or after the
	// baseline, ascending. Generation gaps mean a segment of acknowledged
	// events was deleted out from under us — replaying across the hole would
	// silently under-count spent budget, so refuse.
	var chain []uint64
	for _, gen := range wals {
		if len(snaps) == 0 || gen >= w.snapGen {
			chain = append(chain, gen)
		}
	}
	switch {
	case len(chain) == 0:
		w.gen = w.snapGen
		if w.gen == 0 {
			w.gen = 1
		}
		chain = []uint64{w.gen}
	default:
		if w.snapGen > 0 && chain[0] != w.snapGen {
			return fmt.Errorf("store: journal segment %d missing (oldest present is %d)", w.snapGen, chain[0])
		}
		for i := 1; i < len(chain); i++ {
			if chain[i] != chain[i-1]+1 {
				return fmt.Errorf("store: journal segments %d..%d missing between %s and %s",
					chain[i-1]+1, chain[i]-1, segName(walPrefix, chain[i-1]), segName(walPrefix, chain[i]))
			}
		}
		w.gen = chain[len(chain)-1]
	}
	w.segments = len(chain)

	for i, gen := range chain {
		walPath := filepath.Join(w.dir, segName(walPrefix, gen))
		raw, err := os.ReadFile(walPath)
		if err != nil {
			if os.IsNotExist(err) && len(chain) == 1 && w.snapGen == 0 {
				break // fresh directory: the segment is created below
			}
			// A snapshot's journal segment is created (and its directory
			// entry synced) BEFORE the snapshot can exist, so a missing
			// wal-<snapGen> means acknowledged post-snapshot events are
			// gone. Refuse, like any other gap.
			return fmt.Errorf("store: reading journal: %w", err)
		}
		events, valid, derr := decodeAll(raw)
		w.recovered = append(w.recovered, events...)
		if gen == w.gen {
			w.walBytes = uint64(valid)
		}
		if derr != nil {
			if i != len(chain)-1 {
				// A torn or corrupt tail is only benign in the FINAL segment
				// (crash mid-append). In an earlier segment the events after
				// the damage are gone while later segments still replay, so
				// acknowledged budget would silently vanish mid-stream.
				return fmt.Errorf("store: journal segment %s is corrupt but newer segments exist: %w", walPath, derr)
			}
			// Torn tail (crash mid-append) or trailing corruption: keep the
			// valid prefix, truncate the rest so appends resume on a record
			// boundary, and surface the drop in Health.
			w.truncatedTail = true
			w.droppedBytes = uint64(len(raw) - valid)
			if err := os.Truncate(walPath, int64(valid)); err != nil {
				return fmt.Errorf("store: truncating torn journal tail: %w", err)
			}
		}
	}

	f, err := os.OpenFile(filepath.Join(w.dir, segName(walPrefix, w.gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	w.f = f

	// Drop generations older than the baseline now that the chain is decided.
	for _, gen := range snaps {
		if gen != w.snapGen {
			_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, gen)))
		}
	}
	for _, gen := range wals {
		if w.snapGen > 0 && gen < w.snapGen {
			_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
		}
	}
	return nil
}

// flusher fsyncs the active segment on the configured interval.
func (w *WAL) flusher(interval time.Duration) {
	defer close(w.flushDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed {
				if err := w.f.Sync(); err != nil {
					w.fail(err)
				} else {
					w.syncs++
				}
			}
			w.mu.Unlock()
		}
	}
}

// fail records an operational error for Health; callers hold w.mu.
func (w *WAL) fail(err error) {
	w.failures++
	w.lastErr = err.Error()
}

// Append implements SessionStore.
func (w *WAL) Append(ev Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.broken {
		return fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	buf, err := appendRecord(w.scratch[:0], ev)
	if err != nil {
		w.fail(err)
		return err
	}
	w.scratch = buf
	if _, err := w.f.Write(buf); err != nil {
		w.fail(err)
		// A partial write leaves junk past the last record boundary; a
		// LATER successful append would land after it, and recovery —
		// which stops at the first bad record — would silently drop that
		// acknowledged event. Roll the file back to the last good offset;
		// if even that fails, refuse all further writes: the journal
		// offset is unknown and appending blind would be worse.
		if terr := w.f.Truncate(int64(w.walBytes)); terr != nil {
			w.broken = true
			w.fail(terr)
		}
		return fmt.Errorf("store: appending record: %w", err)
	}
	w.appends++
	w.appendedBytes += uint64(len(buf))
	w.walBytes += uint64(len(buf))
	if w.sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
			return fmt.Errorf("store: syncing journal: %w", err)
		}
		w.syncs++
	}
	return nil
}

// Rotate implements Rotator: under the store lock it seals the active
// journal segment and opens wal-<gen+1> as the new append target, then
// returns a Rotation whose Commit writes and publishes the snap-<gen+1>
// baseline outside the lock. Rotation is the only part of a snapshot that
// excludes appenders, and it does no state serialization — its cost is one
// file create plus (under relaxed sync policies) one fsync of the sealed
// segment, independent of state size.
func (w *WAL) Rotate() (Rotation, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	if w.broken {
		return nil, fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	if w.snapPending {
		return nil, fmt.Errorf("store: a snapshot rotation is already in progress")
	}
	gen := w.gen + 1
	newWal, err := os.OpenFile(filepath.Join(w.dir, segName(walPrefix, gen)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		w.fail(err)
		return nil, fmt.Errorf("store: starting new journal segment: %w", err)
	}
	// Make the new segment's directory entry durable NOW, not at commit
	// time: acknowledged events start landing in it immediately, and a
	// power crash during the (long, out-of-lock) baseline write must not be
	// able to lose the file that holds them.
	w.syncDir()
	// Seal the old segment: sync it so the baseline's cut is at least as
	// durable as the events it subsumes, then stop writing to it. Appends
	// from here on land in the new segment and are replayed after the
	// baseline regardless of whether the commit ever happens.
	if err := w.f.Sync(); err != nil {
		_ = newWal.Close()
		_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
		w.fail(err)
		return nil, fmt.Errorf("store: syncing sealed segment: %w", err)
	}
	w.syncs++
	_ = w.f.Close()
	w.f = newWal
	w.gen = gen
	w.walBytes = 0
	w.segments++
	w.snapPending = true
	return &walRotation{w: w, gen: gen}, nil
}

// walRotation is WAL's Rotation: the handle between a segment rotation and
// the baseline write that completes it.
type walRotation struct {
	w    *WAL
	gen  uint64
	done bool
}

// Commit implements Rotation: it writes the baseline to a temp file, fsyncs
// it, atomically renames it into place and deletes the generations it
// subsumes. Only the rename is the commit point — a crash or failure before
// it leaves the previous snapshot plus the segment chain authoritative, so
// nothing acknowledged is ever lost. No store lock is held during the file
// write; concurrent appends proceed.
func (r *walRotation) Commit(state []Event) error {
	w := r.w
	if r.done {
		return fmt.Errorf("store: rotation already completed")
	}
	r.done = true
	final := filepath.Join(w.dir, segName(snapPrefix, r.gen))
	tmp := final + tmpSuffix
	err := w.writeSnapshotFile(tmp, state)
	if err == nil {
		if rerr := os.Rename(tmp, final); rerr != nil {
			_ = os.Remove(tmp)
			err = fmt.Errorf("store: publishing snapshot: %w", rerr)
		}
	}
	w.mu.Lock()
	w.snapPending = false
	if err != nil {
		w.fail(err)
		w.mu.Unlock()
		return err
	}
	oldSnap := w.snapGen
	w.snapGen = r.gen
	subsumed := w.segments - int(w.gen-r.gen) - 1
	w.segments -= subsumed
	w.snapshots++
	w.snapshotEvents = uint64(len(state))
	w.syncs++ // the baseline fsync inside writeSnapshotFile
	w.mu.Unlock()
	w.syncDir()
	// Best-effort cleanup of everything the new baseline subsumes.
	if oldSnap > 0 {
		_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, oldSnap)))
	}
	start := oldSnap
	if start == 0 {
		start = 1
	}
	for gen := start; gen < r.gen; gen++ {
		_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
	}
	return nil
}

// Abort implements Rotation: the snapshot is abandoned, the rotated segment
// stays (its events replay after the previous baseline), and a later
// snapshot rotates again.
func (r *walRotation) Abort() {
	if r.done {
		return
	}
	r.done = true
	r.w.mu.Lock()
	r.w.snapPending = false
	r.w.mu.Unlock()
}

// Snapshot implements SessionStore as a one-phase convenience: rotate, then
// immediately write and publish the baseline. Callers that need appends to
// proceed during the baseline write use Rotate/Commit directly and collect
// their state between the two.
func (w *WAL) Snapshot(state []Event) error {
	rot, err := w.Rotate()
	if err != nil {
		return err
	}
	return rot.Commit(state)
}

// writeSnapshotFile writes state as framed records to path and fsyncs it.
// It runs outside w.mu (Commit's baseline write is concurrent with appends)
// and therefore touches no shared counters; the caller accounts the fsync.
func (w *WAL) writeSnapshotFile(path string, state []Event) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	var buf []byte
	for _, ev := range state {
		buf, err = appendRecord(buf, ev)
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return err
		}
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs the journal directory so renames and creates are durable.
// Best effort: some platforms reject directory fsync.
func (w *WAL) syncDir() {
	d, err := os.Open(w.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Recover implements SessionStore, returning the events loaded at open.
func (w *WAL) Recover() ([]Event, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	return w.recovered, nil
}

// Close implements SessionStore: it stops the background flusher, fsyncs
// the journal and closes it.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	if err := w.f.Sync(); err != nil {
		firstErr = err
	} else {
		w.syncs++
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		w.fail(firstErr)
		return fmt.Errorf("store: closing WAL: %w", firstErr)
	}
	return nil
}

// Health implements Healther.
func (w *WAL) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Health{
		Backend:            "wal",
		Appends:            w.appends,
		AppendedBytes:      w.appendedBytes,
		Syncs:              w.syncs,
		Failures:           w.failures,
		LastError:          w.lastErr,
		Snapshots:          w.snapshots,
		SnapshotEvents:     w.snapshotEvents,
		RecoveredEvents:    uint64(len(w.recovered)),
		TruncatedTail:      w.truncatedTail,
		DroppedBytes:       w.droppedBytes,
		JournalBytes:       w.walBytes,
		Generation:         w.gen,
		SnapshotGeneration: w.snapGen,
		Segments:           w.segments,
	}
}
