package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy controls when the WAL backend calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged event survives
	// both a process crash and a machine crash. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes every append to the kernel immediately (so a
	// process crash loses nothing) and fsyncs on a background interval, so a
	// machine crash loses at most one interval of events.
	SyncInterval
	// SyncNone never fsyncs explicitly; the kernel flushes at its leisure.
	// A process crash still loses nothing — appends are unbuffered writes —
	// but a machine crash may lose recently acknowledged events.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spellings "always", "interval" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or none)", s)
	}
}

// WALConfig configures a WAL store.
type WALConfig struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval;
	// 0 means DefaultSyncInterval.
	SyncInterval time.Duration
	// CommitWindow stretches group commit: the flush leader waits this long
	// before writing, so more concurrent appenders join the batch and share
	// its write (and, under SyncAlways, its fsync/msync). 0 — the default —
	// means flush immediately: coalescing then happens only to the extent
	// appends actually queue up behind an in-flight flush. Every append's
	// latency grows by up to the window, so keep it at or below the disk's
	// sync latency; it buys nothing under SyncNone.
	CommitWindow time.Duration
	// DisableMmap forces write()-based journaling even where the mmap fast
	// path is supported. The durability guarantees are identical; the mmap
	// path is simply faster (a memcpy hands bytes to the kernel instead of
	// a syscall). Mainly for debugging and for exercising the portable
	// fallback in tests.
	DisableMmap bool
}

// DefaultSyncInterval is the background fsync cadence when WALConfig leaves
// SyncInterval zero.
const DefaultSyncInterval = 100 * time.Millisecond

// File layout inside WALConfig.Dir. Each snapshot starts a new generation
// g: "snap-<g>.log" holds the full-state baseline and "wal-<g>.log" the
// events appended since. Snapshots are two-phase: rotation opens wal-<g>
// first (appends continue there immediately), then the baseline snap-<g> is
// written to a ".tmp" file and atomically renamed — so a visible snapshot is
// always complete, and a crash (or commit failure) between the two phases
// leaves a multi-segment chain: the previous snapshot plus every newer
// wal segment, which recovery replays in generation order. Generations
// older than the newest snapshot and leftover temp files are removed on
// open.
const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	segSuffix  = ".log"
	tmpSuffix  = ".tmp"
)

func segName(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%016d%s", prefix, gen, segSuffix)
}

// parseSeg extracts the generation from a segment name with the given
// prefix, reporting whether the name matched.
func parseSeg(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), segSuffix), 10, 64)
	return gen, err == nil
}

// WAL is the durable SessionStore: an append-only journal of CRC-checked,
// length-prefixed records with snapshot compaction, mmap-backed appends and
// group commit.
//
// Durability model: once Append returns, the event's bytes are in the
// kernel (memcpy into a MAP_SHARED mapping on Linux, an unbuffered write()
// elsewhere — the two are equivalent: dirty page cache survives a process
// crash either way) and the event survives a process crash regardless of
// sync policy; the policy only decides how much a machine (power) crash
// can lose. Recovery tolerates a torn final record (truncating the tail)
// and all-zero mmap chunk padding, but refuses corrupt snapshots: a
// snapshot is rename-atomic, so damage there means disk trouble an
// operator must see.
//
// Group commit: whenever appends must share a durability round-trip — the
// msync barrier of SyncAlways in mmap mode, every write in write() mode —
// concurrent callers encode into a shared pending batch and the flush
// leader retires it with ONE write and at most ONE fsync/msync, releasing
// every waiter only after the batch is durable. The journal-before-response
// invariant therefore holds per event while the durability cost is
// amortized across the batch; events still hit the disk in arrival order,
// and a torn tail still truncates at a record boundary.
type WAL struct {
	dir    string
	sync   SyncPolicy
	window time.Duration

	mu          sync.Mutex
	idle        *sync.Cond // signaled when flushing drops to false
	f           *os.File   // active journal segment
	m           mmapRegion // active segment's mapping; inactive in write() mode
	noMmap      bool       // config or runtime fallback: journal via write()
	gen         uint64     // active journal segment generation
	snapGen     uint64     // latest published snapshot generation; 0 = none
	segments    int        // live journal segments (gen chain since snapGen)
	snapPending bool       // a rotation is between Rotate and Commit/Abort
	closed      bool
	broken      bool // journal offset unknown after a failed rollback; all writes refused
	walBytes    uint64
	recovered   []Event

	// Group-commit state, guarded by mu. pending is the batch the NEXT
	// flush will write; flushing marks an active leader (which writes
	// outside mu); paused asks the leader to yield so Rotate can swap the
	// segment file. freeBatches recycles batch structs (and their encode
	// buffers), so the steady-state append path allocates nothing.
	// Invariant: pending != nil implies a leader is active or about to be
	// restarted (by Rotate after a pause).
	pending     *walBatch
	flushing    bool
	paused      bool
	freeBatches []*walBatch

	flushStop chan struct{}
	flushDone chan struct{}

	// inst receives sampled timing observations (see SetInstrumenter);
	// instOn gates the hot path's clock reads without taking mu, and
	// instTick drives the 1-in-N append sampling. openDur remembers how
	// long open()'s recovery scan took so a later SetInstrumenter can
	// replay it.
	inst     Instrumenter
	instOn   atomic.Bool
	instTick atomic.Uint64
	openDur  time.Duration

	// Counters surfaced by Health; guarded by mu.
	appends        uint64
	appendedBytes  uint64
	flushes        uint64
	syncs          uint64
	failures       uint64
	lastErr        string
	snapshots      uint64
	snapshotEvents uint64
	truncatedTail  bool
	droppedBytes   uint64
}

var _ SessionStore = (*WAL)(nil)
var _ BatchAppender = (*WAL)(nil)
var _ Healther = (*WAL)(nil)
var _ Rotator = (*WAL)(nil)
var _ Instrumented = (*WAL)(nil)

// walBatch is one group-commit unit: the already-encoded records of every
// caller that joined, flushed with one write. Everything is guarded by the
// WAL's mu: joiners bump refs and wait (spin-then-park on the batch's own
// condvar); the leader sets done+err and broadcasts; the last member to
// observe the result recycles the batch.
type walBatch struct {
	buf     []byte
	count   int  // events in the batch
	counted int  // events already accounted in w.appends (mmap sync tickets)
	refs    int  // callers that have yet to observe the result
	parked  bool // a waiter gave up spinning; the leader must broadcast
	// done is atomic so spinning waiters poll it without bouncing the
	// store mutex; err is published before done and read only after.
	done    atomic.Bool
	err     error
	flushed sync.Cond // on the WAL's mu; per-batch so a flush wakes only its own waiters
}

// NewWAL opens (or initializes) the journal directory, replays the latest
// snapshot plus journal into memory for Recover, truncates any torn tail so
// new appends start from a clean record boundary, and removes stale
// generations and temp files.
func NewWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: WAL requires a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating WAL dir: %w", err)
	}
	if cfg.CommitWindow < 0 {
		return nil, fmt.Errorf("store: negative commit window %v", cfg.CommitWindow)
	}
	w := &WAL{dir: cfg.Dir, sync: cfg.Sync, window: cfg.CommitWindow, noMmap: cfg.DisableMmap || !mmapSupported}
	w.idle = sync.NewCond(&w.mu)
	openStart := time.Now()
	if err := w.open(); err != nil {
		return nil, err
	}
	w.openDur = time.Since(openStart)
	if w.sync == SyncInterval {
		interval := cfg.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(interval)
	}
	return w, nil
}

// open scans the directory, picks the newest complete snapshot as the
// baseline, replays it plus every newer journal segment in generation
// order, and opens the newest segment for appending.
//
// More than one journal segment is the expected signature of a crash (or a
// persistent write failure) between a two-phase snapshot's rotation and its
// commit: wal-<g+1> exists but snap-<g+1> does not, so the previous
// generation's snapshot stays authoritative and both segments replay after
// it. Nothing acknowledged is lost in that window.
func (w *WAL) open() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("store: reading WAL dir: %w", err)
	}
	var snaps, wals []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A temp file is an interrupted snapshot baseline write; the
			// previous generation is still authoritative.
			_ = os.Remove(filepath.Join(w.dir, name))
			continue
		}
		if gen, ok := parseSeg(name, snapPrefix); ok {
			snaps = append(snaps, gen)
		}
		if gen, ok := parseSeg(name, walPrefix); ok {
			wals = append(wals, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	// The baseline is the newest snapshot; its generation and every newer
	// journal segment replay. With no snapshot yet the chain starts at the
	// oldest journal segment (generation 1 on a fresh directory).
	if len(snaps) > 0 {
		w.snapGen = snaps[len(snaps)-1]
		snapPath := filepath.Join(w.dir, segName(snapPrefix, w.snapGen))
		raw, err := os.ReadFile(snapPath)
		if err != nil {
			return fmt.Errorf("store: reading snapshot: %w", err)
		}
		events, _, err := decodeAll(raw)
		if err != nil {
			// Snapshots are written whole and rename-atomic: damage here is
			// disk corruption, and silently dropping sessions would forget
			// spent privacy budget. Refuse to start.
			return fmt.Errorf("store: snapshot %s is corrupt: %w", snapPath, err)
		}
		w.recovered = events
	}

	// Collect the replay chain: every journal segment at or after the
	// baseline, ascending. Generation gaps mean a segment of acknowledged
	// events was deleted out from under us — replaying across the hole would
	// silently under-count spent budget, so refuse.
	var chain []uint64
	for _, gen := range wals {
		if len(snaps) == 0 || gen >= w.snapGen {
			chain = append(chain, gen)
		}
	}
	switch {
	case len(chain) == 0:
		w.gen = w.snapGen
		if w.gen == 0 {
			w.gen = 1
		}
		chain = []uint64{w.gen}
	default:
		if w.snapGen > 0 && chain[0] != w.snapGen {
			return fmt.Errorf("store: journal segment %d missing (oldest present is %d)", w.snapGen, chain[0])
		}
		for i := 1; i < len(chain); i++ {
			if chain[i] != chain[i-1]+1 {
				return fmt.Errorf("store: journal segments %d..%d missing between %s and %s",
					chain[i-1]+1, chain[i]-1, segName(walPrefix, chain[i-1]), segName(walPrefix, chain[i]))
			}
		}
		w.gen = chain[len(chain)-1]
	}
	w.segments = len(chain)

	for i, gen := range chain {
		walPath := filepath.Join(w.dir, segName(walPrefix, gen))
		raw, err := os.ReadFile(walPath)
		if err != nil {
			if os.IsNotExist(err) && len(chain) == 1 && w.snapGen == 0 {
				break // fresh directory: the segment is created below
			}
			// A snapshot's journal segment is created (and its directory
			// entry synced) BEFORE the snapshot can exist, so a missing
			// wal-<snapGen> means acknowledged post-snapshot events are
			// gone. Refuse, like any other gap.
			return fmt.Errorf("store: reading journal: %w", err)
		}
		events, valid, derr := decodeAll(raw)
		w.recovered = append(w.recovered, events...)
		if gen == w.gen {
			w.walBytes = uint64(valid)
		}
		if derr != nil {
			switch {
			case allZero(raw[valid:]):
				// An all-zero tail is mmap chunk padding — the signature of
				// a crash (or an interrupted rotation) before the segment
				// was sealed and trimmed, in ANY segment of the chain. No
				// record can begin with eight zero bytes, so the valid
				// prefix is complete; trim the padding so a write()-mode
				// reopen cannot append after it.
				if err := os.Truncate(walPath, int64(valid)); err != nil {
					return fmt.Errorf("store: trimming journal padding: %w", err)
				}
			case i != len(chain)-1:
				// A torn or corrupt tail is only benign in the FINAL segment
				// (crash mid-append). In an earlier segment the events after
				// the damage are gone while later segments still replay, so
				// acknowledged budget would silently vanish mid-stream.
				return fmt.Errorf("store: journal segment %s is corrupt but newer segments exist: %w", walPath, derr)
			default:
				// Torn tail (crash mid-append) or trailing corruption: keep
				// the valid prefix, truncate the rest so appends resume on a
				// record boundary, and surface the drop in Health.
				w.truncatedTail = true
				w.droppedBytes = uint64(len(raw) - valid)
				if err := os.Truncate(walPath, int64(valid)); err != nil {
					return fmt.Errorf("store: truncating torn journal tail: %w", err)
				}
			}
		}
	}

	f, m, err := w.openSegment(w.gen, int64(w.walBytes), false)
	if err != nil {
		return err
	}
	w.f, w.m = f, m

	// Drop generations older than the baseline now that the chain is decided.
	for _, gen := range snaps {
		if gen != w.snapGen {
			_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, gen)))
		}
	}
	for _, gen := range wals {
		if w.snapGen > 0 && gen < w.snapGen {
			_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
		}
	}
	return nil
}

// allZero reports whether b contains only zero bytes.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// openSegment opens (creating if needed) journal segment gen for appending
// at offset walBytes and, where supported, maps it. A mapping failure is
// not fatal: the store falls back to write() journaling, whose guarantees
// are identical. fresh truncates an existing file first (rotation reuses
// nothing).
func (w *WAL) openSegment(gen uint64, walBytes int64, fresh bool) (*os.File, mmapRegion, error) {
	path := filepath.Join(w.dir, segName(walPrefix, gen))
	truncFlag := 0
	if fresh {
		truncFlag = os.O_TRUNC
	}
	if !w.noMmap {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|truncFlag, 0o644)
		if err != nil {
			return nil, mmapRegion{}, fmt.Errorf("store: opening journal: %w", err)
		}
		m, merr := mapSegment(f, walBytes)
		if merr == nil {
			return f, m, nil
		}
		// Filesystem without fallocate/mmap support: remember and fall
		// back for the store's lifetime.
		_ = f.Close()
		w.noMmap = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|truncFlag, 0o644)
	if err != nil {
		return nil, mmapRegion{}, fmt.Errorf("store: opening journal: %w", err)
	}
	return f, mmapRegion{}, nil
}

// flusher syncs the active segment on the configured interval.
func (w *WAL) flusher(interval time.Duration) {
	defer close(w.flushDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed {
				syncStart := time.Now()
				if err := w.syncSegmentLocked(); err != nil {
					w.fail(err)
				} else {
					w.syncs++
					if w.inst != nil {
						// Events 0: an interval sync flushes whatever
						// bytes are buffered, not a counted batch.
						w.inst.FlushObserved(Flush{Sync: time.Since(syncStart)})
					}
				}
			}
			w.mu.Unlock()
		}
	}
}

// syncSegmentLocked makes the active segment's appended bytes durable:
// msync in mmap mode, fsync in write() mode. Callers hold w.mu.
func (w *WAL) syncSegmentLocked() error {
	if w.m.active() {
		return w.m.sync()
	}
	return w.f.Sync()
}

// fail records an operational error for Health; callers hold w.mu.
func (w *WAL) fail(err error) {
	w.failures++
	w.lastErr = err.Error()
}

// SetInstrumenter implements Instrumented. It must be called before the
// WAL is used concurrently (the server attaches telemetry while opening
// the manager). The recovery measurement taken at open is replayed onto
// the new instrumenter so the attach order does not lose it.
func (w *WAL) SetInstrumenter(i Instrumenter) {
	w.mu.Lock()
	w.inst = i
	w.instOn.Store(i != nil)
	dur, events := w.openDur, len(w.recovered)
	w.mu.Unlock()
	if i != nil {
		i.RecoveryObserved(dur, events)
	}
}

// appendSamplePeriod is the append-latency sampling rate: one append in
// this many reads the clock and reports a weighted observation. Power of
// two so the tick check is a mask.
const appendSamplePeriod = 8

// sampleStart decides whether this append is one of the 1-in-N sampled
// observations, reading the clock only then — steady-state
// instrumentation cost is two uncontended atomics per append.
func (w *WAL) sampleStart() (time.Time, bool) {
	if !w.instOn.Load() || w.instTick.Add(1)&(appendSamplePeriod-1) != 0 {
		return time.Time{}, false
	}
	return time.Now(), true
}

// Append implements SessionStore; doAppend does the work, this wrapper
// adds the sampled caller-observed latency (enqueue through durability
// acknowledgement, group-commit wait included).
func (w *WAL) Append(ev Event) error {
	start, sampled := w.sampleStart()
	err := w.doAppend(ev)
	if sampled && err == nil {
		w.inst.AppendSampled(time.Since(start), appendSamplePeriod)
	}
	return err
}

// AppendBatch implements BatchAppender; see Append for the sampling
// wrapper.
func (w *WAL) AppendBatch(evs []Event) error {
	start, sampled := w.sampleStart()
	err := w.doAppendBatch(evs)
	if sampled && err == nil {
		w.inst.AppendSampled(time.Since(start), appendSamplePeriod)
	}
	return err
}

// doAppend journals one event. In mmap mode the record is encoded
// straight into the mapped segment — the memcpy hands the bytes to the
// kernel, which is exactly the durability an unbuffered write() gave — and
// only SyncAlways then waits on the shared msync barrier. In write() mode
// the record is encoded into the shared pending batch, and the caller
// either becomes the flush leader or waits until a leader has made the
// batch durable.
func (w *WAL) doAppend(ev Event) error {
	w.mu.Lock()
	if err := w.writableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.m.active() {
		need := recordSize(ev)
		dst, err := w.reserveLocked(need)
		if err != nil {
			w.fail(err)
			w.mu.Unlock()
			return err
		}
		if _, err := appendRecord(dst, ev); err != nil {
			w.fail(err)
			w.mu.Unlock()
			return err
		}
		return w.mmapCommitLocked(need, 1) // unlocks
	}
	b := w.pendingLocked()
	buf, err := appendRecord(b.buf, ev)
	if err != nil {
		w.fail(err)
		w.retireIfEmptyLocked(b)
		w.mu.Unlock()
		return err
	}
	b.buf = buf
	b.count++
	return w.commitLocked(b) // unlocks
}

// doAppendBatch journals evs as one atomic batch record (all-or-nothing
// on recovery), flushed with one write through the same group-commit path
// as doAppend.
func (w *WAL) doAppendBatch(evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	if len(evs) == 1 {
		return w.doAppend(evs[0])
	}
	w.mu.Lock()
	if err := w.writableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.m.active() {
		need := batchRecordSize(evs)
		dst, err := w.reserveLocked(need)
		if err != nil {
			w.fail(err)
			w.mu.Unlock()
			return err
		}
		if _, err := appendBatchRecord(dst, evs); err != nil {
			w.fail(err)
			w.mu.Unlock()
			return err
		}
		return w.mmapCommitLocked(need, len(evs)) // unlocks
	}
	b := w.pendingLocked()
	buf, err := appendBatchRecord(b.buf, evs)
	if err != nil {
		w.fail(err)
		w.retireIfEmptyLocked(b)
		w.mu.Unlock()
		return err
	}
	b.buf = buf
	b.count += len(evs)
	return w.commitLocked(b) // unlocks
}

// reserveLocked returns the next need bytes of the mapped segment as an
// empty slice with exactly that capacity, so the caller encodes the record
// in place (append fills the window, never reallocates). walBytes is NOT
// advanced — a failed encode leaves nothing behind. Grows the mapping by
// whole chunks when the window does not fit. Callers hold w.mu.
func (w *WAL) reserveLocked(need int) ([]byte, error) {
	for {
		// Recomputed every iteration: waiting below releases w.mu, and
		// another appender may have advanced walBytes (or grown the
		// mapping) in the meantime — encoding at a stale offset would
		// overwrite its record.
		off := int(w.walBytes)
		if off+need <= len(w.m.buf) {
			return w.m.buf[off : off : off+need], nil
		}
		if err := w.writableLocked(); err != nil {
			w.restartLeaderLocked()
			return nil, err
		}
		if w.flushing {
			// Growth swaps the mapping, and an in-flight msync (the
			// SyncAlways leader runs outside w.mu) must not touch a stale
			// one: park the leader like Rotate does.
			w.paused = true
			w.idle.Wait()
			w.paused = false
			continue
		}
		if err := w.m.unmap(); err != nil {
			w.broken = true
			w.restartLeaderLocked()
			return nil, err
		}
		m, err := mapSegment(w.f, int64(off+need))
		if err != nil {
			// Can't map further (disk full, filesystem limit). Fall back
			// to write() journaling so the store stays usable: trim the
			// chunk padding first — an O_APPEND reopen must continue at
			// the last record boundary, not after the zeros.
			if terr := w.f.Truncate(int64(off)); terr != nil {
				w.broken = true
				w.fail(terr)
			} else if nf, oerr := os.OpenFile(filepath.Join(w.dir, segName(walPrefix, w.gen)), os.O_WRONLY|os.O_APPEND, 0o644); oerr != nil {
				w.broken = true
				w.fail(oerr)
			} else {
				_ = w.f.Close()
				w.f = nf
				w.noMmap = true
			}
			w.restartLeaderLocked()
			return nil, err
		}
		w.m = m
	}
}

// mmapCommitLocked publishes an in-place encoded record of need bytes
// holding count events: the memcpy already handed the bytes to the kernel,
// so only SyncAlways has anything to wait for — the shared msync barrier.
// Callers hold w.mu; it is released on return.
func (w *WAL) mmapCommitLocked(need, count int) error {
	w.walBytes += uint64(need)
	w.appends += uint64(count)
	w.appendedBytes += uint64(need)
	if w.sync != SyncAlways {
		w.mu.Unlock()
		return nil
	}
	b := w.pendingLocked()
	b.count += count
	b.counted += count       // already in w.appends; the leader must not re-count
	return w.commitLocked(b) // unlocks
}

// restartLeaderLocked re-arms a flush leader for batches a paused leader
// left pending, when the path that paused it cannot (or may not) flush
// them itself — without this their waiters would stay parked until some
// unrelated later append. Callers hold w.mu.
func (w *WAL) restartLeaderLocked() {
	if w.pending != nil && !w.flushing && !w.closed {
		w.flushing = true
		go func() {
			w.mu.Lock()
			w.lead()
			w.mu.Unlock()
		}()
	}
}

// writableLocked is the shared append guard; callers hold w.mu.
func (w *WAL) writableLocked() error {
	if w.closed {
		return ErrClosed
	}
	if w.broken {
		return fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	return nil
}

// pendingLocked returns the batch currently accepting events, creating (or
// recycling) it if needed. Callers hold w.mu.
func (w *WAL) pendingLocked() *walBatch {
	if w.pending == nil {
		var b *walBatch
		if n := len(w.freeBatches); n > 0 {
			b = w.freeBatches[n-1]
			w.freeBatches = w.freeBatches[:n-1]
		} else {
			b = new(walBatch)
			b.flushed.L = &w.mu
		}
		w.pending = b
	}
	return w.pending
}

// retireIfEmptyLocked drops a batch this caller created but failed to put
// anything into, so no empty batch lingers for a leader to chase. Callers
// hold w.mu.
func (w *WAL) retireIfEmptyLocked(b *walBatch) {
	if b.count == 0 && b.refs == 0 && w.pending == b {
		w.pending = nil
		w.recycleLocked(b)
	}
}

// recycleLocked resets a fully-observed batch for reuse. Callers hold w.mu.
func (w *WAL) recycleLocked(b *walBatch) {
	if len(w.freeBatches) < 4 {
		b.buf = b.buf[:0]
		b.count, b.counted, b.refs, b.parked, b.err = 0, 0, 0, false, nil
		b.done.Store(false)
		w.freeBatches = append(w.freeBatches, b)
	}
}

// commitLocked completes an enqueue: the caller's events are already
// encoded into batch b. If no leader is active the caller becomes it and
// flushes until the queue drains; otherwise it waits until a leader has
// flushed b. Either way the caller returns b's outcome; the last member
// out recycles the batch. Callers hold w.mu; it is released on return.
func (w *WAL) commitLocked(b *walBatch) error {
	b.refs++
	if !w.flushing {
		w.flushing = true
		w.lead() // releases and re-acquires mu; b is flushed on return
	}
	// Spin-then-park: on a busy machine the flush completes within a few
	// scheduler passes, and a cooperative yield is several times cheaper
	// than a full park + wake through the condvar. The spin polls the
	// atomic done flag without touching the store mutex; parking — with
	// the mutex held and the flag re-checked under it — only happens when
	// the flush is genuinely slow (an fsync under SyncAlways, a congested
	// disk) so waiters stop burning cycles.
	if !b.done.Load() {
		w.mu.Unlock()
		for spins := 0; spins < 4; spins++ {
			runtime.Gosched()
			if b.done.Load() {
				break
			}
		}
		w.mu.Lock()
		for !b.done.Load() {
			b.parked = true
			b.flushed.Wait()
		}
	}
	err := b.err
	b.refs--
	if b.refs == 0 {
		w.recycleLocked(b)
	}
	w.mu.Unlock()
	return err
}

// lead is the group-commit flush loop: it repeatedly takes the pending
// batch, writes it OUTSIDE w.mu (appends keep enqueueing into the next
// batch meanwhile), applies the sync policy, and releases the batch's
// waiting callers. It runs until the queue is empty or Rotate asks it to
// yield (paused). Called with w.mu held and flushing just set; w.mu is
// held again on return.
func (w *WAL) lead() {
	for {
		var gatherDur time.Duration
		if w.pending != nil {
			// Gather phase: give concurrent appenders a chance to join the
			// batch before it is sealed. With a commit window the leader
			// sleeps it out; without one it still yields the processor
			// once — on a saturated machine the runnable request
			// goroutines run, reach Append, enqueue and wait, so the batch
			// fills for the cost of one scheduler pass. A fast write
			// syscall never releases the P, so without this yield a
			// single-core server would degenerate to one write per event.
			w.mu.Unlock()
			gatherStart := time.Now()
			if w.window > 0 {
				time.Sleep(w.window)
			} else {
				runtime.Gosched()
			}
			gatherDur = time.Since(gatherStart)
			w.mu.Lock()
		}
		cur := w.pending
		if cur == nil || (w.paused && !w.closed) {
			// Queue drained — or Rotate is waiting for the file to be
			// quiescent and will restart a leader for anything still
			// pending. (When the store is closing, Close drains instead.)
			w.flushing = false
			w.idle.Broadcast()
			return
		}
		w.pending = nil
		if w.broken {
			cur.err = fmt.Errorf("store: journal in failed state: %s", w.lastErr)
			w.releaseLocked(cur)
			continue
		}
		if w.m.active() {
			// mmap mode: every event in this batch is already in the
			// mapping; the flush is purely the SyncAlways msync barrier.
			m := w.m
			w.mu.Unlock()
			syncStart := time.Now()
			serr := m.sync()
			syncDur := time.Since(syncStart)
			w.mu.Lock()
			if serr != nil {
				w.fail(serr)
				cur.err = fmt.Errorf("store: msync journal: %w", serr)
			} else {
				w.flushes++
				w.syncs++
				if w.inst != nil {
					w.inst.FlushObserved(Flush{Events: cur.count, Gather: gatherDur, Sync: syncDur})
				}
			}
			w.releaseLocked(cur)
			continue
		}
		f := w.f
		off := w.walBytes
		w.mu.Unlock()

		writeStart := time.Now()
		_, werr := f.Write(cur.buf)
		writeDur := time.Since(writeStart)
		var serr error
		var syncDur time.Duration
		if werr == nil && w.sync == SyncAlways {
			syncStart := time.Now()
			serr = f.Sync()
			syncDur = time.Since(syncStart)
		}

		w.mu.Lock()
		switch {
		case werr != nil:
			w.fail(werr)
			// Same rollback contract as before group commit: junk past the
			// last record boundary must not survive in front of later
			// appends.
			if terr := f.Truncate(int64(off)); terr != nil {
				w.broken = true
				w.fail(terr)
			}
			cur.err = fmt.Errorf("store: appending record: %w", werr)
		default:
			// counted events (mmap sync tickets that joined before a
			// write()-mode fallback) are already in w.appends.
			w.appends += uint64(cur.count - cur.counted)
			w.appendedBytes += uint64(len(cur.buf))
			w.walBytes += uint64(len(cur.buf))
			w.flushes++
			if w.inst != nil {
				w.inst.FlushObserved(Flush{Events: cur.count, Gather: gatherDur, Write: writeDur, Sync: syncDur})
			}
			if serr != nil {
				// The bytes are down (a process crash keeps them) but the
				// SyncAlways promise is broken; report it to every caller.
				w.fail(serr)
				cur.err = fmt.Errorf("store: syncing journal: %w", serr)
			} else if w.sync == SyncAlways {
				w.syncs++
			}
		}
		w.releaseLocked(cur)
	}
}

// releaseLocked marks a batch complete and wakes any waiter that gave up
// spinning and parked on the batch's condvar. Callers hold w.mu and have
// set cur.err (the plain err write is ordered before the atomic done
// store, which is what spinning readers synchronize on).
func (w *WAL) releaseLocked(cur *walBatch) {
	cur.done.Store(true)
	if cur.parked {
		cur.flushed.Broadcast()
	}
}

// Rotate implements Rotator: under the store lock it seals the active
// journal segment and opens wal-<gen+1> as the new append target, then
// returns a Rotation whose Commit writes and publishes the snap-<gen+1>
// baseline outside the lock. Rotation is the only part of a snapshot that
// excludes appenders, and it does no state serialization — its cost is one
// file create plus (under relaxed sync policies) one fsync of the sealed
// segment, independent of state size.
func (w *WAL) Rotate() (Rotation, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Park the flush leader first: it writes the segment file outside w.mu,
	// and the file must be quiescent before it is sealed and swapped. The
	// paused flag makes the leader yield after its in-flight batch instead
	// of waiting for the queue to drain, which under sustained load it
	// never would.
	for w.flushing {
		w.paused = true
		w.idle.Wait()
	}
	w.paused = false
	// Whatever happens next, appends that parked while the leader was
	// yielded must get a new leader once the rotation (or its failure) is
	// over; their events land in whatever segment is then active, which is
	// correct — they are unacknowledged until flushed. Registered after the
	// unlock defer, so it runs while w.mu is still held.
	defer w.restartLeaderLocked()
	if w.closed {
		return nil, ErrClosed
	}
	if w.broken {
		return nil, fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	if w.snapPending {
		return nil, fmt.Errorf("store: a snapshot rotation is already in progress")
	}
	gen := w.gen + 1
	newWal, newMap, err := w.openSegment(gen, 0, true)
	if err != nil {
		w.fail(err)
		return nil, fmt.Errorf("store: starting new journal segment: %w", err)
	}
	// Make the new segment's directory entry durable NOW, not at commit
	// time: acknowledged events start landing in it immediately, and a
	// power crash during the (long, out-of-lock) baseline write must not be
	// able to lose the file that holds them.
	w.syncDir()
	// Seal the old segment: sync it so the baseline's cut is at least as
	// durable as the events it subsumes, then stop writing to it. Appends
	// from here on land in the new segment and are replayed after the
	// baseline regardless of whether the commit ever happens.
	if err := w.syncSegmentLocked(); err != nil {
		_ = newMap.unmap()
		_ = newWal.Close()
		_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
		w.fail(err)
		return nil, fmt.Errorf("store: syncing sealed segment: %w", err)
	}
	w.syncs++
	if w.m.active() {
		// Trim the sealed segment's chunk padding; best-effort, recovery
		// skips an all-zero tail anyway.
		_ = w.m.unmap()
		_ = w.f.Truncate(int64(w.walBytes))
	}
	_ = w.f.Close()
	w.f, w.m = newWal, newMap
	w.gen = gen
	w.walBytes = 0
	w.segments++
	w.snapPending = true
	return &walRotation{w: w, gen: gen}, nil
}

// walRotation is WAL's Rotation: the handle between a segment rotation and
// the baseline write that completes it.
type walRotation struct {
	w    *WAL
	gen  uint64
	done bool
}

// Commit implements Rotation: it writes the baseline to a temp file, fsyncs
// it, atomically renames it into place and deletes the generations it
// subsumes. Only the rename is the commit point — a crash or failure before
// it leaves the previous snapshot plus the segment chain authoritative, so
// nothing acknowledged is ever lost. No store lock is held during the file
// write; concurrent appends proceed.
func (r *walRotation) Commit(state []Event) error {
	w := r.w
	if r.done {
		return fmt.Errorf("store: rotation already completed")
	}
	r.done = true
	final := filepath.Join(w.dir, segName(snapPrefix, r.gen))
	tmp := final + tmpSuffix
	err := w.writeSnapshotFile(tmp, state)
	if err == nil {
		if rerr := os.Rename(tmp, final); rerr != nil {
			_ = os.Remove(tmp)
			err = fmt.Errorf("store: publishing snapshot: %w", rerr)
		}
	}
	w.mu.Lock()
	w.snapPending = false
	if err != nil {
		w.fail(err)
		w.mu.Unlock()
		return err
	}
	oldSnap := w.snapGen
	w.snapGen = r.gen
	subsumed := w.segments - int(w.gen-r.gen) - 1
	w.segments -= subsumed
	w.snapshots++
	w.snapshotEvents = uint64(len(state))
	w.syncs++ // the baseline fsync inside writeSnapshotFile
	w.mu.Unlock()
	w.syncDir()
	// Best-effort cleanup of everything the new baseline subsumes.
	if oldSnap > 0 {
		_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, oldSnap)))
	}
	start := oldSnap
	if start == 0 {
		start = 1
	}
	for gen := start; gen < r.gen; gen++ {
		_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
	}
	return nil
}

// Abort implements Rotation: the snapshot is abandoned, the rotated segment
// stays (its events replay after the previous baseline), and a later
// snapshot rotates again.
func (r *walRotation) Abort() {
	if r.done {
		return
	}
	r.done = true
	r.w.mu.Lock()
	r.w.snapPending = false
	r.w.mu.Unlock()
}

// Snapshot implements SessionStore as a one-phase convenience: rotate, then
// immediately write and publish the baseline. Callers that need appends to
// proceed during the baseline write use Rotate/Commit directly and collect
// their state between the two.
func (w *WAL) Snapshot(state []Event) error {
	rot, err := w.Rotate()
	if err != nil {
		return err
	}
	return rot.Commit(state)
}

// snapBufPool recycles the snapshot-file encode buffer across snapshots;
// the buffer grows to the full baseline size once and is then reused.
var snapBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<16); return &b }}

// writeSnapshotFile writes state as framed records to path and fsyncs it.
// It runs outside w.mu (Commit's baseline write is concurrent with appends)
// and therefore touches no shared counters; the caller accounts the fsync.
func (w *WAL) writeSnapshotFile(path string, state []Event) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	bp := snapBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	defer func() { *bp = buf[:0]; snapBufPool.Put(bp) }()
	for _, ev := range state {
		buf, err = appendRecord(buf, ev)
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return err
		}
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs the journal directory so renames and creates are durable.
// Best effort: some platforms reject directory fsync.
func (w *WAL) syncDir() {
	d, err := os.Open(w.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Recover implements SessionStore, returning the events loaded at open.
func (w *WAL) Recover() ([]Event, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	return w.recovered, nil
}

// Close implements SessionStore: it drains any in-flight group commit,
// stops the background flusher, fsyncs the journal and closes it. Events
// already accepted into a pending batch are flushed before the file closes;
// new appends fail with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	for w.flushing {
		w.idle.Wait()
	}
	if w.pending != nil {
		// A leader yielded to a Rotate that never restarted one (or the
		// pause raced Close): flush the stragglers ourselves — lead ignores
		// paused once closed is set.
		w.flushing = true
		w.lead()
	}
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	if err := w.syncSegmentLocked(); err != nil {
		firstErr = err
	} else {
		w.syncs++
	}
	if w.m.active() {
		if err := w.m.unmap(); err != nil && firstErr == nil {
			firstErr = err
		}
		// Trim the chunk padding so the closed journal ends on a record
		// boundary; recovery tolerates the padding regardless.
		if err := w.f.Truncate(int64(w.walBytes)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		w.fail(firstErr)
		return fmt.Errorf("store: closing WAL: %w", firstErr)
	}
	return nil
}

// Health implements Healther.
func (w *WAL) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Health{
		Backend:            "wal",
		Appends:            w.appends,
		AppendedBytes:      w.appendedBytes,
		Flushes:            w.flushes,
		Syncs:              w.syncs,
		Failures:           w.failures,
		LastError:          w.lastErr,
		Snapshots:          w.snapshots,
		SnapshotEvents:     w.snapshotEvents,
		RecoveredEvents:    uint64(len(w.recovered)),
		TruncatedTail:      w.truncatedTail,
		DroppedBytes:       w.droppedBytes,
		JournalBytes:       w.walBytes,
		Generation:         w.gen,
		SnapshotGeneration: w.snapGen,
		Segments:           w.segments,
		Mmap:               w.m.active(),
		Broken:             w.broken,
	}
}
