package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when the WAL backend calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged event survives
	// both a process crash and a machine crash. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes every append to the kernel immediately (so a
	// process crash loses nothing) and fsyncs on a background interval, so a
	// machine crash loses at most one interval of events.
	SyncInterval
	// SyncNone never fsyncs explicitly; the kernel flushes at its leisure.
	// A process crash still loses nothing — appends are unbuffered writes —
	// but a machine crash may lose recently acknowledged events.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spellings "always", "interval" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or none)", s)
	}
}

// WALConfig configures a WAL store.
type WALConfig struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval;
	// 0 means DefaultSyncInterval.
	SyncInterval time.Duration
}

// DefaultSyncInterval is the background fsync cadence when WALConfig leaves
// SyncInterval zero.
const DefaultSyncInterval = 100 * time.Millisecond

// File layout inside WALConfig.Dir. Each snapshot starts a new generation
// g: "snap-<g>.log" holds the full-state baseline and "wal-<g>.log" the
// events appended since. Snapshots are written to a ".tmp" file and
// atomically renamed, so a visible snapshot is always complete; stale
// generations and leftover temp files are removed on open.
const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	segSuffix  = ".log"
	tmpSuffix  = ".tmp"
)

func segName(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%016d%s", prefix, gen, segSuffix)
}

// parseSeg extracts the generation from a segment name with the given
// prefix, reporting whether the name matched.
func parseSeg(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), segSuffix), 10, 64)
	return gen, err == nil
}

// WAL is the durable SessionStore: an append-only journal of CRC-checked,
// length-prefixed records with snapshot compaction.
//
// Durability model: Append writes the record to the journal file with a
// single unbuffered write — once Append returns, the event survives a
// process crash regardless of sync policy; the policy only decides how much
// a machine (power) crash can lose. Recovery tolerates a torn final record
// (truncating the tail) but refuses corrupt snapshots: a snapshot is
// rename-atomic, so damage there means disk trouble an operator must see.
type WAL struct {
	dir  string
	sync SyncPolicy

	mu        sync.Mutex
	f         *os.File // active journal segment
	gen       uint64
	closed    bool
	broken    bool // journal offset unknown after a failed rollback; all writes refused
	scratch   []byte
	walBytes  uint64
	recovered []Event

	flushStop chan struct{}
	flushDone chan struct{}

	// Counters surfaced by Health; guarded by mu.
	appends        uint64
	appendedBytes  uint64
	syncs          uint64
	failures       uint64
	lastErr        string
	snapshots      uint64
	snapshotEvents uint64
	truncatedTail  bool
	droppedBytes   uint64
}

var _ SessionStore = (*WAL)(nil)
var _ Healther = (*WAL)(nil)

// NewWAL opens (or initializes) the journal directory, replays the latest
// snapshot plus journal into memory for Recover, truncates any torn tail so
// new appends start from a clean record boundary, and removes stale
// generations and temp files.
func NewWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: WAL requires a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating WAL dir: %w", err)
	}
	w := &WAL{dir: cfg.Dir, sync: cfg.Sync}
	if err := w.open(); err != nil {
		return nil, err
	}
	if w.sync == SyncInterval {
		interval := cfg.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(interval)
	}
	return w, nil
}

// open scans the directory, picks the newest complete generation, loads its
// events and opens the journal segment for appending.
func (w *WAL) open() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("store: reading WAL dir: %w", err)
	}
	var snaps, wals []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A temp file is an interrupted snapshot; the previous
			// generation is still authoritative.
			_ = os.Remove(filepath.Join(w.dir, name))
			continue
		}
		if gen, ok := parseSeg(name, snapPrefix); ok {
			snaps = append(snaps, gen)
		}
		if gen, ok := parseSeg(name, walPrefix); ok {
			wals = append(wals, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	// The baseline is the newest snapshot. With no snapshot yet, it is the
	// OLDEST journal segment (generation 1 on a fresh directory): a newer
	// segment without a matching snapshot is the empty orphan of a first
	// snapshot that crashed before its rename commit point, and picking it
	// would discard every event in the real segment.
	w.gen = 1
	haveSnap := len(snaps) > 0
	if haveSnap {
		w.gen = snaps[len(snaps)-1]
	} else if len(wals) > 0 {
		w.gen = wals[0]
	}

	if haveSnap {
		snapPath := filepath.Join(w.dir, segName(snapPrefix, w.gen))
		raw, err := os.ReadFile(snapPath)
		if err != nil {
			return fmt.Errorf("store: reading snapshot: %w", err)
		}
		events, _, err := decodeAll(raw)
		if err != nil {
			// Snapshots are written whole and rename-atomic: damage here is
			// disk corruption, and silently dropping sessions would forget
			// spent privacy budget. Refuse to start.
			return fmt.Errorf("store: snapshot %s is corrupt: %w", snapPath, err)
		}
		w.recovered = events
	}

	walPath := filepath.Join(w.dir, segName(walPrefix, w.gen))
	raw, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: reading journal: %w", err)
	}
	if err == nil {
		events, valid, derr := decodeAll(raw)
		w.recovered = append(w.recovered, events...)
		w.walBytes = uint64(valid)
		if derr != nil {
			// Torn tail (crash mid-append) or trailing corruption: keep the
			// valid prefix, truncate the rest so appends resume on a record
			// boundary, and surface the drop in Health.
			w.truncatedTail = true
			w.droppedBytes = uint64(len(raw) - valid)
			if err := os.Truncate(walPath, int64(valid)); err != nil {
				return fmt.Errorf("store: truncating torn journal tail: %w", err)
			}
		}
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	w.f = f

	// Drop stale generations now that the active one is decided.
	for _, gen := range snaps {
		if gen != w.gen {
			_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, gen)))
		}
	}
	for _, gen := range wals {
		if gen != w.gen {
			_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, gen)))
		}
	}
	return nil
}

// flusher fsyncs the active segment on the configured interval.
func (w *WAL) flusher(interval time.Duration) {
	defer close(w.flushDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed {
				if err := w.f.Sync(); err != nil {
					w.fail(err)
				} else {
					w.syncs++
				}
			}
			w.mu.Unlock()
		}
	}
}

// fail records an operational error for Health; callers hold w.mu.
func (w *WAL) fail(err error) {
	w.failures++
	w.lastErr = err.Error()
}

// Append implements SessionStore.
func (w *WAL) Append(ev Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.broken {
		return fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	buf, err := appendRecord(w.scratch[:0], ev)
	if err != nil {
		w.fail(err)
		return err
	}
	w.scratch = buf
	if _, err := w.f.Write(buf); err != nil {
		w.fail(err)
		// A partial write leaves junk past the last record boundary; a
		// LATER successful append would land after it, and recovery —
		// which stops at the first bad record — would silently drop that
		// acknowledged event. Roll the file back to the last good offset;
		// if even that fails, refuse all further writes: the journal
		// offset is unknown and appending blind would be worse.
		if terr := w.f.Truncate(int64(w.walBytes)); terr != nil {
			w.broken = true
			w.fail(terr)
		}
		return fmt.Errorf("store: appending record: %w", err)
	}
	w.appends++
	w.appendedBytes += uint64(len(buf))
	w.walBytes += uint64(len(buf))
	if w.sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
			return fmt.Errorf("store: syncing journal: %w", err)
		}
		w.syncs++
	}
	return nil
}

// Snapshot implements SessionStore: it writes the full state to a temp
// file, fsyncs it, atomically renames it into place, starts a fresh journal
// segment and deletes the previous generation.
func (w *WAL) Snapshot(state []Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.broken {
		return fmt.Errorf("store: journal in failed state: %s", w.lastErr)
	}
	gen := w.gen + 1
	final := filepath.Join(w.dir, segName(snapPrefix, gen))
	tmp := final + tmpSuffix
	if err := w.writeSnapshotFile(tmp, state); err != nil {
		w.fail(err)
		return err
	}
	// Create the new journal segment BEFORE publishing the snapshot: the
	// rename is the commit point that makes generation gen authoritative,
	// and once it lands, recovery deletes the old segment — so the new one
	// must already exist or post-snapshot appends would be lost. Any
	// failure before the rename aborts cleanly with the old generation
	// intact (a leftover empty wal-gen is swept as stale on the next open).
	newWalPath := filepath.Join(w.dir, segName(walPrefix, gen))
	newWal, err := os.OpenFile(newWalPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		_ = os.Remove(tmp)
		w.fail(err)
		return fmt.Errorf("store: starting new journal segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = newWal.Close()
		_ = os.Remove(newWalPath)
		_ = os.Remove(tmp)
		w.fail(err)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	w.syncDir()
	oldGen := w.gen
	_ = w.f.Close()
	w.f = newWal
	w.gen = gen
	w.walBytes = 0
	w.snapshots++
	w.snapshotEvents = uint64(len(state))
	_ = os.Remove(filepath.Join(w.dir, segName(snapPrefix, oldGen)))
	_ = os.Remove(filepath.Join(w.dir, segName(walPrefix, oldGen)))
	return nil
}

// writeSnapshotFile writes state as framed records to path and fsyncs it.
func (w *WAL) writeSnapshotFile(path string, state []Event) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	var buf []byte
	for _, ev := range state {
		buf, err = appendRecord(buf, ev)
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return err
		}
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	w.syncs++
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs the journal directory so renames and creates are durable.
// Best effort: some platforms reject directory fsync.
func (w *WAL) syncDir() {
	d, err := os.Open(w.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Recover implements SessionStore, returning the events loaded at open.
func (w *WAL) Recover() ([]Event, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	return w.recovered, nil
}

// Close implements SessionStore: it stops the background flusher, fsyncs
// the journal and closes it.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	if err := w.f.Sync(); err != nil {
		firstErr = err
	} else {
		w.syncs++
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		w.fail(firstErr)
		return fmt.Errorf("store: closing WAL: %w", firstErr)
	}
	return nil
}

// Health implements Healther.
func (w *WAL) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Health{
		Backend:         "wal",
		Appends:         w.appends,
		AppendedBytes:   w.appendedBytes,
		Syncs:           w.syncs,
		Failures:        w.failures,
		LastError:       w.lastErr,
		Snapshots:       w.snapshots,
		SnapshotEvents:  w.snapshotEvents,
		RecoveredEvents: uint64(len(w.recovered)),
		TruncatedTail:   w.truncatedTail,
		DroppedBytes:    w.droppedBytes,
		JournalBytes:    w.walBytes,
		Generation:      w.gen,
	}
}
