package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// ev builds a test event with a deterministic payload.
func ev(kind byte, id string, data string) Event {
	var d []byte
	if data != "" {
		d = []byte(data)
	}
	return Event{Kind: kind, ID: id, Data: d}
}

// eventsEqual compares two event slices structurally.
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].ID != b[i].ID || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// openWAL opens a WAL with SyncAlways in dir, failing the test on error.
func openWAL(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// walPath returns the active journal segment's path.
func walPath(t *testing.T, w *WAL) string {
	t.Helper()
	return filepath.Join(w.dir, segName(walPrefix, w.gen))
}

func TestRecordRoundTrip(t *testing.T) {
	events := []Event{
		ev(1, "abc", `{"x":1}`),
		ev(2, "", ""),
		ev(254, strings.Repeat("s", 300), string(make([]byte, 1000))),
	}
	var buf []byte
	var err error
	for _, e := range events {
		buf, err = appendRecord(buf, e)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, n, err := decodeAll(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decodeAll: n=%d err=%v, want full clean decode of %d bytes", n, err, len(buf))
	}
	if !eventsEqual(got, events) {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
}

func TestRecordRejectsKindZero(t *testing.T) {
	if _, err := appendRecord(nil, Event{Kind: 0, ID: "x"}); err == nil {
		t.Fatal("kind 0 encoded, want error")
	}
}

func TestDecodeRecordTruncatedAndCorrupt(t *testing.T) {
	full, err := appendRecord(nil, ev(7, "session", "payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Any strict prefix is a truncated tail, not corruption.
	for cut := 0; cut < len(full); cut++ {
		_, _, err := decodeRecord(full[:cut], nil)
		if err != ErrTruncatedRecord {
			t.Fatalf("cut at %d: err=%v, want ErrTruncatedRecord", cut, err)
		}
	}
	// A flipped payload byte is corruption.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := decodeRecord(bad, nil); err == nil || err == ErrTruncatedRecord {
		t.Fatalf("corrupt record: err=%v, want ErrCorruptRecord", err)
	}
	// An absurd length prefix is corruption, not an allocation.
	huge := append([]byte(nil), full...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := decodeRecord(huge, nil); err == nil || err == ErrTruncatedRecord {
		t.Fatalf("oversized length: err=%v, want ErrCorruptRecord", err)
	}
}

func TestWALAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	want := []Event{ev(1, "a", "create-a"), ev(2, "a", "progress"), ev(1, "b", "create-b"), ev(3, "a", "")}
	for _, e := range want {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	h := w2.Health()
	if h.RecoveredEvents != 4 || h.TruncatedTail {
		t.Fatalf("health %+v, want 4 recovered events and no truncated tail", h)
	}
}

func TestWALRecoverWithoutClose(t *testing.T) {
	// A process crash leaves no Close behind; with SyncAlways everything
	// appended must still be there.
	dir := t.TempDir()
	w := openWAL(t, dir)
	want := []Event{ev(1, "a", "x"), ev(2, "a", "y")}
	for _, e := range want {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// No w.Close(): simulate the crash by just abandoning the handle.
	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
}

func TestWALTruncatedTailDropped(t *testing.T) {
	for cut := 1; cut <= 5; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			w := openWAL(t, dir)
			keep := []Event{ev(1, "a", "first"), ev(2, "a", "second")}
			for _, e := range keep {
				if err := w.Append(e); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append(ev(2, "a", "torn-away")); err != nil {
				t.Fatal(err)
			}
			path := walPath(t, w)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Cut into the last record, simulating a crash mid-write.
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			w2 := openWAL(t, dir)
			defer w2.Close()
			got, err := w2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if !eventsEqual(got, keep) {
				t.Fatalf("recovered %+v, want the two intact events", got)
			}
			h := w2.Health()
			if !h.TruncatedTail || h.DroppedBytes == 0 {
				t.Fatalf("health %+v, want truncatedTail with dropped bytes", h)
			}
			// The torn bytes are physically gone: appends after recovery
			// land on a clean boundary and a third open sees a clean log.
			if err := w2.Append(ev(2, "a", "after-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			w3 := openWAL(t, dir)
			defer w3.Close()
			got3, err := w3.Recover()
			if err != nil {
				t.Fatal(err)
			}
			want3 := append(append([]Event(nil), keep...), ev(2, "a", "after-recovery"))
			if !eventsEqual(got3, want3) {
				t.Fatalf("after re-append recovered %+v, want %+v", got3, want3)
			}
			if w3.Health().TruncatedTail {
				t.Fatal("third open still sees a torn tail; truncation did not persist")
			}
		})
	}
}

func TestWALCorruptTailRecordDropped(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	keep := ev(1, "a", "good")
	if err := w.Append(keep); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(2, "a", "rotted")); err != nil {
		t.Fatal(err)
	}
	path := walPath(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the final record's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got, []Event{keep}) {
		t.Fatalf("recovered %+v, want only the intact first event", got)
	}
	if h := w2.Health(); !h.TruncatedTail {
		t.Fatalf("health %+v, want truncated tail reported", h)
	}
}

func TestWALSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	for i := 0; i < 10; i++ {
		if err := w.Append(ev(2, "a", fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	state := []Event{ev(5, "a", "snap-a"), ev(5, "b", "snap-b")}
	if err := w.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	post := ev(2, "a", "post")
	if err := w.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the new generation's files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir holds %v, want exactly one snap + one wal", names)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Event(nil), state...), post)
	if !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want snapshot baseline + post-snapshot appends", got)
	}
	if h := w2.Health(); h.Generation != 2 {
		t.Fatalf("generation %d, want 2 after one snapshot", h.Generation)
	}
}

func TestWALIgnoresLeftoverTempSnapshot(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	good := ev(1, "a", "authoritative")
	if err := w.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-snapshot leaves a temp file; it must be ignored and
	// removed, with the previous generation still authoritative.
	tmp := filepath.Join(dir, segName(snapPrefix, 2)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got, []Event{good}) {
		t.Fatalf("recovered %+v, want the pre-crash event", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover temp snapshot not removed")
	}
}

func TestWALTornGenerationReplaysNewerSegment(t *testing.T) {
	// A crash between a rotation and its baseline commit leaves wal-3 with
	// no matching snap-3: the generation-2 snapshot stays the baseline and
	// BOTH segments replay after it, so events appended during the doomed
	// snapshot's baseline write are never lost. The newer segment becomes
	// the active one.
	dir := t.TempDir()
	w := openWAL(t, dir)
	good := ev(1, "a", "authoritative")
	if err := w.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot([]Event{good}); err != nil { // now at gen 2
		t.Fatal(err)
	}
	tail := ev(2, "a", "post-snapshot")
	if err := w.Append(tail); err != nil {
		t.Fatal(err)
	}
	rot, err := w.Rotate() // now at gen 3, snap-3 never written
	if err != nil {
		t.Fatal(err)
	}
	during := ev(2, "a", "during-baseline-write")
	if err := w.Append(during); err != nil {
		t.Fatal(err)
	}
	_ = rot // crash before Commit: abandon the rotation and the handle
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if want := []Event{good, tail, during}; !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v (baseline + both segments)", got, want)
	}
	h := w2.Health()
	if h.Generation != 3 || h.SnapshotGeneration != 2 || h.Segments != 2 {
		t.Fatalf("health %+v, want generation 3 on snapshot 2 with a 2-segment chain", h)
	}
	// The next snapshot collapses the chain back to one generation.
	if err := w2.Snapshot(got); err != nil {
		t.Fatal(err)
	}
	if h := w2.Health(); h.Generation != 4 || h.SnapshotGeneration != 4 || h.Segments != 1 {
		t.Fatalf("post-compaction health %+v, want a single generation-4 chain", h)
	}
}

func TestWALMultiSegmentChainBeforeFirstSnapshot(t *testing.T) {
	// The same crash window before ANY snapshot exists: every segment from
	// the oldest onward replays in order.
	dir := t.TempDir()
	w := openWAL(t, dir)
	first := ev(1, "a", "first-segment")
	if err := w.Append(first); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rotate(); err != nil { // snap-2 never committed
		t.Fatal(err)
	}
	second := ev(2, "a", "second-segment")
	if err := w.Append(second); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if want := []Event{first, second}; !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	if h := w2.Health(); h.Segments != 2 || h.SnapshotGeneration != 0 {
		t.Fatalf("health %+v, want a 2-segment chain with no snapshot", h)
	}
}

func TestWALSegmentGapRefusesToOpen(t *testing.T) {
	// A deleted middle segment means acknowledged events are gone while
	// newer ones would still replay; recovery must refuse rather than
	// silently under-count spent budget.
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(ev(1, "a", "x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rot, err := w.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		rot.Abort() // failed snapshot: the segment chain keeps growing
		if err := w.Append(ev(2, "a", fmt.Sprintf("seg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(walPrefix, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways}); err == nil {
		t.Fatal("gapped segment chain opened silently; events in the hole would be forgotten")
	}
}

func TestWALMissingSnapshotSegmentRefusesToOpen(t *testing.T) {
	// Rotate creates (and dir-syncs) wal-<g> BEFORE snap-<g> can exist, so
	// a present snapshot with a missing journal segment means acknowledged
	// post-snapshot events are gone: refuse, like any interior gap.
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(ev(1, "a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot([]Event{ev(5, "a", "baseline")}); err != nil { // gen 2
		t.Fatal(err)
	}
	if err := w.Append(ev(2, "a", "post-snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(walPrefix, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways}); err == nil {
		t.Fatal("missing journal segment for the live snapshot opened silently; its events would be forgotten")
	}
}

func TestWALTornMiddleSegmentRefusesToOpen(t *testing.T) {
	// A torn tail is only benign in the FINAL segment; damage in an earlier
	// segment with newer segments present drops events mid-stream.
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(ev(1, "a", "kept")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(2, "a", "will-be-torn")); err != nil {
		t.Fatal(err)
	}
	middle := walPath(t, w)
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(2, "a", "newer-segment")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(middle)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(middle, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways}); err == nil {
		t.Fatal("torn middle segment opened silently")
	}
}

func TestWALRotateAbortAndOverlap(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(ev(1, "a", "x")); err != nil {
		t.Fatal(err)
	}
	rot, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rotate(); err == nil {
		t.Fatal("overlapping rotation allowed")
	}
	rot.Abort()
	// After an abort the rotated segment stays and a new snapshot works.
	if err := w.Append(ev(2, "a", "post-abort")); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot([]Event{ev(5, "a", "baseline")}); err != nil {
		t.Fatal(err)
	}
	post := ev(2, "a", "post-snap")
	if err := w.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	defer w2.Close()
	got, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if want := []Event{ev(5, "a", "baseline"), post}; !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	if h := w2.Health(); h.Segments != 1 {
		t.Fatalf("health %+v, want the chain collapsed to one segment", h)
	}
}

func TestWALCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Append(ev(1, "a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot([]Event{ev(5, "a", "baseline")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, segName(snapPrefix, 2))
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways}); err == nil {
		t.Fatal("corrupt snapshot opened silently; spent budget could be forgotten")
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := NewWAL(WALConfig{Dir: dir, Sync: policy, SyncInterval: 10 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			want := []Event{ev(1, "s", "a"), ev(2, "s", "b")}
			for _, e := range want {
				if err := w.Append(e); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncInterval {
				time.Sleep(30 * time.Millisecond) // let the flusher tick
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2 := openWAL(t, dir)
			defer w2.Close()
			got, err := w2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if !eventsEqual(got, want) {
				t.Fatalf("recovered %+v, want %+v", got, want)
			}
		})
	}
}

func TestWALClosedOperationsFail(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ev(1, "a", "")); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := w.Snapshot(nil); err != ErrClosed {
		t.Fatalf("Snapshot after Close: %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	if err := m.Append(ev(1, "a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	got, err := m.Recover()
	if err != nil || got != nil {
		t.Fatalf("Recover = %v, %v, want empty", got, err)
	}
	h := m.Health()
	if h.Backend != "mem" || h.Appends != 1 || h.Snapshots != 1 {
		t.Fatalf("health %+v", h)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(ev(1, "a", "x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}
