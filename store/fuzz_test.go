package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the WAL record decoder with arbitrary bytes.
// Recovery feeds the decoder whatever survived a crash, so it must never
// panic, never over-read, and anything it does accept must re-encode to the
// exact bytes it consumed (otherwise recovery and the journal disagree
// about where the next record starts).
func FuzzDecodeRecord(f *testing.F) {
	seed := func(ev Event) []byte {
		b, err := appendRecord(nil, ev)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := seed(Event{Kind: 1, ID: "0123456789abcdef0123456789abcdef", Data: []byte(`{"answered":3}`)})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(seed(Event{Kind: 254, ID: "", Data: nil}))
	// An atomic batch frame (kind 255 is reserved for it) and a torn copy.
	batch, err := appendBatchRecord(nil, []Event{
		{Kind: 2, ID: "s", Data: []byte{5, 2}},
		{Kind: 4, ID: "0123456789abcdef0123456789abcdef"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add(batch[:len(batch)-4])
	// Payloads spanning the server codec's generations, kept green so
	// legacy WAL decode can never regress at the record layer: a v1
	// counters-only progress delta, a v2 delta with the special-cased
	// ρ/synth flag bits, a v3 delta carrying an opaque mechanism state
	// blob, and a v3 session record with a base64 state blob.
	f.Add(seed(Event{Kind: 2, ID: "s", Data: []byte{5, 2}}))
	f.Add(seed(Event{Kind: 2, ID: "s", Data: []byte{
		2, 1, 9, 0, 0x01, // counters, draws, flags=rho
		0, 0, 0, 0, 0, 0, 0xf4, 0xbf, // ρ = -1.25 LE float64
	}}))
	f.Add(seed(Event{Kind: 2, ID: "s", Data: []byte{
		1, 1, 3, 2, 0x04, // counters, draws, flags=state
		8, 0, 0, 0, 0, 0, 0, 0xe0, 0x3f, // 8-byte blob: ρ = 0.5
	}}))
	f.Add(seed(Event{Kind: 5, ID: "0123456789abcdef0123456789abcdef",
		Data: []byte(`{"v":3,"params":{"mechanism":"esvt","epsilon":1,"maxPositives":3,"seed":17},"answered":2,"positives":1,"draws":4,"state":"AAAAAAAA4D8="}`)}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	corrupted := append([]byte(nil), valid...)
	corrupted[9] ^= 0x01
	f.Add(corrupted)
	two := append(append([]byte(nil), valid...), seed(Event{Kind: 2, ID: "s", Data: []byte{1, 2}})...)
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := decodeRecord(data, nil)
		if err != nil {
			if err != ErrTruncatedRecord && !bytes.Contains([]byte(err.Error()), []byte("corrupt")) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if ev.Kind == 0 {
			t.Fatal("decoder accepted reserved kind 0")
		}
		// Round trip: re-encoding must reproduce the consumed bytes. Batch
		// frames round-trip through their own encoder.
		var re []byte
		if ev.Kind == batchKind {
			sub, serr := decodeBatchPayload(ev.Data, nil)
			if serr != nil {
				t.Fatalf("accepted batch frame does not expand: %v", serr)
			}
			re, err = appendBatchRecord(nil, sub)
		} else {
			re, err = appendRecord(nil, ev)
		}
		if err != nil {
			t.Fatalf("re-encoding decoded event: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data[:n], re)
		}
		// decodeAll over the same bytes must agree with record-at-a-time.
		events, valid, derr := decodeAll(data)
		if len(events) == 0 || valid < n {
			t.Fatalf("decodeAll dropped the leading record: %d events, %d valid bytes, err %v", len(events), valid, derr)
		}
	})
}
