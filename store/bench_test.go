package store

// Throughput benchmarks of the WAL backend, the floor under the server's
// WAL-backed serving numbers. Set SVT_BENCH_JSON=BENCH_store.json to also
// write a machine-readable summary so future PRs can track the journaling
// cost as a trajectory:
//
//	SVT_BENCH_JSON=BENCH_store.json go test -bench . -run '^$' ./store/

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// benchEntry is one benchmark's summary line in the JSON trajectory.
type benchEntry struct {
	Name          string  `json:"name"`
	AppendsPerSec float64 `json:"appendsPerSec"`
	NsPerOp       float64 `json:"nsPerOp"`
	AllocsPerOp   float64 `json:"allocsPerOp"`
	BytesPerOp    float64 `json:"bytesPerOp"`
	P99Ns         float64 `json:"p99Ns,omitempty"`
	Ops           int     `json:"ops"`
	Sync          string  `json:"sync,omitempty"`
}

// memTrack measures the allocation trajectory of a benchmark's timed
// section from runtime.MemStats deltas. Call startMem just before
// ResetTimer and hand it to recordBench after StopTimer.
type memTrack struct{ m0 runtime.MemStats }

func startMem() *memTrack {
	t := new(memTrack)
	runtime.ReadMemStats(&t.m0)
	return t
}

func (t *memTrack) perOp(n int) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-t.m0.Mallocs) / float64(n), float64(m1.TotalAlloc-t.m0.TotalAlloc) / float64(n)
}

// benchSummary is the whole JSON document.
type benchSummary struct {
	Package    string       `json:"package"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	CPUs       int          `json:"cpus"`
	Timestamp  string       `json:"timestamp"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

var (
	benchMu      sync.Mutex
	benchEntries []benchEntry
)

// recordBench stashes one benchmark result for the JSON summary; a re-run
// under the same name (the larger, final calibration pass) replaces the
// earlier entry.
func recordBench(b *testing.B, mt *memTrack, sync string) { recordBenchP99(b, mt, sync, 0) }

// recordBenchP99 also records a tail-latency metric when the benchmark
// measured one.
func recordBenchP99(b *testing.B, mt *memTrack, sync string, p99Ns float64) {
	ops := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(ops, "appends/sec")
	allocs, bytes := mt.perOp(b.N)
	e := benchEntry{
		Name:          strings.TrimPrefix(b.Name(), "Benchmark"),
		AppendsPerSec: ops,
		NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		P99Ns:         p99Ns,
		Ops:           b.N,
		Sync:          sync,
	}
	benchMu.Lock()
	defer benchMu.Unlock()
	for i := range benchEntries {
		if benchEntries[i].Name == e.Name {
			benchEntries[i] = e
			return
		}
	}
	benchEntries = append(benchEntries, e)
}

// TestMain writes the JSON summary after the run when SVT_BENCH_JSON names
// a file.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("SVT_BENCH_JSON"); path != "" && len(benchEntries) > 0 {
		doc := benchSummary{
			Package:    "github.com/dpgo/svt/store",
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Benchmarks: benchEntries,
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "store: writing bench summary:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchEvent is a progress-sized record: a 32-byte hex session ID and a
// small binary payload, matching what the server journals per batch.
func benchEvent() Event {
	return Event{Kind: 2, ID: "0123456789abcdef0123456789abcdef", Data: []byte{3, 1}}
}

// BenchmarkWALAppend measures serial append throughput per fsync policy.
// "always" is bounded by the disk's sync latency and is expected to be
// orders of magnitude slower — that is the durability price, not a bug.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		b.Run("sync="+policy.String(), func(b *testing.B) {
			w, err := NewWAL(WALConfig{Dir: b.TempDir(), Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = w.Close() })
			ev := benchEvent()
			mt := startMem()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(ev); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recordBench(b, mt, policy.String())
		})
	}
}

// BenchmarkWALAppendParallel measures the contended case: every request
// goroutine funnels through the WAL mutex, the server's serialization
// point under the durable backend.
func BenchmarkWALAppendParallel(b *testing.B) {
	w, err := NewWAL(WALConfig{Dir: b.TempDir(), Sync: SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = w.Close() })
	ev := benchEvent()
	b.SetParallelism(16)
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := w.Append(ev); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	recordBench(b, mt, SyncInterval.String())
}

// BenchmarkWALSnapshot measures compacting a 1k-session state.
func BenchmarkWALSnapshot(b *testing.B) {
	w, err := NewWAL(WALConfig{Dir: b.TempDir(), Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = w.Close() })
	state := make([]Event, 1000)
	for i := range state {
		state[i] = Event{Kind: 5, ID: fmt.Sprintf("%032d", i), Data: []byte(`{"params":{"mechanism":"sparse","epsilon":1},"answered":42,"positives":7}`)}
	}
	mt := startMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Snapshot(state); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recordBench(b, mt, SyncNone.String())
}

// BenchmarkWALAppendDuringSnapshot measures append latency while snapshots
// of growing state sizes run continuously in the background — the
// acceptance gauge for two-phase snapshots. Appends only ever wait for the
// O(1) segment rotation, never for the baseline file write, so both the
// mean and the p99 must stay flat as the session table grows (the one-phase
// design stalled every append for the whole state write, scaling the tail
// latency linearly with table size).
func BenchmarkWALAppendDuringSnapshot(b *testing.B) {
	for _, sessions := range []int{1000, 8000, 32000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			w, err := NewWAL(WALConfig{Dir: b.TempDir(), Sync: SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = w.Close() })
			state := make([]Event, sessions)
			for i := range state {
				state[i] = Event{Kind: 5, ID: fmt.Sprintf("%032d", i), Data: []byte(`{"v":2,"params":{"mechanism":"sparse","epsilon":1},"answered":42,"positives":7,"draws":99}`)}
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					rot, err := w.Rotate()
					if err != nil {
						return
					}
					if err := rot.Commit(state); err != nil {
						return
					}
				}
			}()
			ev := benchEvent()
			lat := make([]time.Duration, b.N)
			mt := startMem()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if err := w.Append(ev); err != nil {
					b.Fatal(err)
				}
				lat[i] = time.Since(start)
			}
			b.StopTimer()
			close(stop)
			<-done
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := float64(lat[len(lat)*99/100].Nanoseconds())
			b.ReportMetric(p99, "p99-ns")
			recordBenchP99(b, mt, SyncNone.String(), p99)
		})
	}
}

// BenchmarkWALRecover measures replaying a 10k-event journal.
func BenchmarkWALRecover(b *testing.B) {
	dir := b.TempDir()
	w, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	ev := benchEvent()
	for i := 0; i < 10000; i++ {
		if err := w.Append(ev); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	mt := startMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		events, err := r.Recover()
		if err != nil || len(events) != 10000 {
			b.Fatalf("recovered %d events, err %v", len(events), err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recordBench(b, mt, SyncNone.String())
}
