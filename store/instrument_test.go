package store

import (
	"sync"
	"testing"
	"time"
)

// recordingInstrumenter captures every hook call for assertions.
type recordingInstrumenter struct {
	mu            sync.Mutex
	appendWeight  uint64
	appendCalls   int
	flushEvents   []int
	flushSyncs    []time.Duration
	recoverEvents int
	recoverCalls  int
	recoverDur    time.Duration
}

func (r *recordingInstrumenter) AppendSampled(d time.Duration, weight uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.appendCalls++
	r.appendWeight += weight
}

func (r *recordingInstrumenter) FlushObserved(f Flush) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushEvents = append(r.flushEvents, f.Events)
	r.flushSyncs = append(r.flushSyncs, f.Sync)
}

func (r *recordingInstrumenter) RecoveryObserved(d time.Duration, events int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recoverCalls++
	r.recoverDur = d
	r.recoverEvents = events
}

func TestWALInstrumentation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingInstrumenter{}
	w.SetInstrumenter(rec)
	if rec.recoverCalls != 1 || rec.recoverEvents != 0 {
		t.Fatalf("recovery not replayed on attach: %+v", rec)
	}

	// 4*appendSamplePeriod appends: the 1-in-N sampling must fire exactly
	// 4 times with total weight equal to the append count.
	n := 4 * appendSamplePeriod
	for i := 0; i < n; i++ {
		if err := w.Append(Event{Kind: 1, ID: "s", Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	calls, weight := rec.appendCalls, rec.appendWeight
	flushes := len(rec.flushEvents)
	totalFlushed := 0
	for _, e := range rec.flushEvents {
		totalFlushed += e
	}
	rec.mu.Unlock()
	if calls != 4 || weight != uint64(n) {
		t.Fatalf("append sampling: %d calls weight %d, want 4 calls weight %d", calls, weight, n)
	}
	// SyncAlways: every append waits on a sync barrier, so flushes were
	// observed and together they cover every event.
	if flushes == 0 || totalFlushed != n {
		t.Fatalf("flush observations cover %d events over %d flushes, want %d", totalFlushed, flushes, n)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with events in the journal: the recovery observation must
	// carry the replayed event count.
	w2, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rec2 := &recordingInstrumenter{}
	w2.SetInstrumenter(rec2)
	if rec2.recoverCalls != 1 || rec2.recoverEvents != n {
		t.Fatalf("recovery replay: calls %d events %d, want 1 and %d", rec2.recoverCalls, rec2.recoverEvents, n)
	}
}

func TestWALInstrumenterDetach(t *testing.T) {
	w, err := NewWAL(WALConfig{Dir: t.TempDir(), Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := &recordingInstrumenter{}
	w.SetInstrumenter(rec)
	w.SetInstrumenter(nil)
	for i := 0; i < 4*appendSamplePeriod; i++ {
		if err := w.Append(Event{Kind: 1, ID: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.appendCalls != 0 {
		t.Fatalf("detached instrumenter still observed %d appends", rec.appendCalls)
	}
}

func TestMemInstrumentation(t *testing.T) {
	m := NewMem()
	rec := &recordingInstrumenter{}
	m.SetInstrumenter(rec)
	if rec.recoverCalls != 1 {
		t.Fatalf("recovery not reported on attach: %+v", rec)
	}
	n := 2 * appendSamplePeriod
	for i := 0; i < n; i++ {
		if err := m.Append(Event{Kind: 1, ID: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AppendBatch(make([]Event, 3)); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.appendCalls < 2 {
		t.Fatalf("mem sampling fired %d times over %d appends, want >= 2", rec.appendCalls, n)
	}
}
