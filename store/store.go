// Package store provides durable persistence for the server's session
// state. In SVT the privacy guarantee lives in mutable per-session state —
// the realized (ε₁, ε₂, ε₃) budget split, the count of answered queries and
// consumed positive outcomes, and the halt flag. A server that forgets this
// state on a crash silently refreshes spent privacy budget, which is a
// privacy bug, not merely an availability gap. This package is the
// journaling layer that prevents it.
//
// The SessionStore interface is deliberately small and application-agnostic:
// the server appends opaque Events (a kind tag, a session ID and a payload
// it encodes itself), periodically hands the store a full-state snapshot for
// compaction, and replays the event stream once at startup. Two backends
// are provided:
//
//   - Mem: a no-op backend for purely in-memory serving (the historical
//     behavior). Appends and snapshots are discarded; Recover returns
//     nothing.
//   - WAL: an append-only write-ahead log of length-prefixed, CRC-checked
//     records with periodic snapshot compaction and truncated-tail-tolerant
//     recovery. Appends go through a memory-mapped segment on Linux (memcpy
//     durability == unbuffered write durability, no syscall) and group
//     commit coalesces concurrent appends into shared flushes wherever a
//     durability round-trip is needed. See NewWAL.
//
// Stores may additionally implement BatchAppender to journal a multi-event
// transition as one crash-atomic unit with one durability round-trip;
// AppendAll is the capability-dispatching helper.
//
// New backends (e.g. a replicated log or a key-value store) implement
// SessionStore and plug into server.ManagerConfig.Store without any change
// to the serving layer.
package store

import (
	"errors"
	"time"
)

// Event is one journaled state transition. The store treats it as opaque:
// Kind and Data are defined by the application (the server package journals
// session create/progress/delete/expire transitions), ID is the session the
// event belongs to.
type Event struct {
	// Kind tags the event type; 0 is reserved as invalid.
	Kind byte
	// ID is the session identifier the event applies to.
	ID string
	// Data is the application-encoded payload; may be empty.
	Data []byte
}

// SessionStore journals session state transitions and replays them after a
// restart. Implementations must make Append, Snapshot and Close safe for
// concurrent use; Recover is called once, before the first Append.
type SessionStore interface {
	// Append durably journals one event. The caller must not release the
	// response that acknowledges the event's state transition until Append
	// has returned nil (the store's sync policy decides how hard that
	// durability promise is). Implementations must not retain ev.Data past
	// Append's return: callers are free to recycle the buffer, which is how
	// the server keeps the query hot path allocation-free.
	Append(ev Event) error
	// Snapshot atomically replaces the store's recovery baseline with the
	// given full-state events and discards the journal tail they subsume.
	// After a crash, Recover yields the snapshot events first, then any
	// events appended after the snapshot. Like Append, implementations must
	// not retain the state slice or any Event.Data past Snapshot's return:
	// the server encodes the whole baseline into one pooled arena and
	// recycles it as soon as the call comes back.
	Snapshot(state []Event) error
	// Recover returns the event stream to replay: the latest snapshot's
	// events followed by every appended event that survived, in order. It is
	// called once before the first Append.
	Recover() ([]Event, error)
	// Close flushes and releases the store. Append after Close fails.
	Close() error
}

// BatchAppender is the optional batched-append side of a SessionStore: one
// call journals several events with ONE durability round-trip (for the WAL,
// one buffered write plus at most one fsync), and the whole batch is atomic
// on recovery — either every event replays or none does, so a crash mid-way
// through a multi-event transition cannot replay half of it. The same
// response-release contract as Append applies to the batch as a whole, and
// ev.Data buffers must likewise not be retained. Stores without natural
// batch support simply do not implement BatchAppender; callers fall back to
// sequential appends (AppendAll does this automatically).
type BatchAppender interface {
	AppendBatch(evs []Event) error
}

// AppendAll journals evs through one atomic AppendBatch when the store
// supports it, and as sequential Append calls otherwise (in which case a
// crash can persist a prefix of the batch — exactly the guarantee
// individual appends already had).
func AppendAll(st SessionStore, evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	if ba, ok := st.(BatchAppender); ok {
		return ba.AppendBatch(evs)
	}
	for _, ev := range evs {
		if err := st.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

// Rotation is an in-progress two-phase snapshot, started by Rotator.Rotate.
// Exactly one of Commit or Abort must be called on every Rotation.
type Rotation interface {
	// Commit writes the full-state baseline for the rotation's generation and
	// publishes it, making it the new recovery baseline and discarding the
	// journal segments it subsumes. It runs outside the store's append path:
	// appends proceed concurrently into the segment the rotation opened.
	// Commit carries the same retention contract as SessionStore.Snapshot:
	// the state slice and every Event.Data are only valid for the duration
	// of the call, because the caller encodes them in a pooled arena.
	Commit(state []Event) error
	// Abort abandons the snapshot. The rotated segment stays in place — the
	// events appended to it are replayed after the previous baseline — and a
	// later snapshot simply rotates again.
	Abort()
}

// Rotator is the optional two-phase snapshot side of a SessionStore. The
// point of the split is lock scope: Rotate is cheap (open a fresh journal
// segment) and is called inside the caller's exclusive section that
// guarantees a consistent cut, while Commit does the expensive
// serialize-and-persist work outside it, so query traffic is never stalled
// behind a full-state file write. Callers must not run two rotations
// concurrently. Stores without natural segment support (Mem) simply do not
// implement Rotator; callers fall back to the one-phase Snapshot.
type Rotator interface {
	Rotate() (Rotation, error)
}

// Instrumenter receives timing measurements from inside a store's write
// and recovery paths — the internals that counters alone cannot expose
// (latency distributions, realized group-commit batch sizes). The
// telemetry layer implements it with histograms; backends call it so
// Mem, WAL and future replicated stores report uniformly.
//
// Implementations must be cheap (a few atomic operations) and safe for
// concurrent use: AppendSampled and FlushObserved are called from the
// append and flush paths, in some cases while the store's internal lock
// is held.
type Instrumenter interface {
	// AppendSampled reports the caller-observed latency of one append
	// (enqueue through durability acknowledgement). Appends are SAMPLED:
	// one call stands for weight appends, so rates derived from the
	// observation count estimate the full population.
	AppendSampled(d time.Duration, weight uint64)
	// FlushObserved reports one physical flush with its phase breakdown;
	// see Flush.
	FlushObserved(f Flush)
	// RecoveryObserved reports the duration of the store's open-time
	// recovery scan and how many events it replayed. Called once, when
	// the instrumenter is attached.
	RecoveryObserved(d time.Duration, events int)
}

// Flush is one physical flush reported through Instrumenter.FlushObserved,
// broken into the phases a group commit actually spends time in, so the
// tracing layer can render a journal wait as gather → write → sync rather
// than one opaque interval.
type Flush struct {
	// Events is how many events the group-commit batch carried; 0 for a
	// background interval sync, which flushes whatever bytes are buffered
	// rather than a counted batch.
	Events int
	// Gather is how long the flush leader held the batch open for
	// concurrent appenders to join (the commit window or scheduler
	// yield); 0 when the flush had no gather phase.
	Gather time.Duration
	// Write is the physical write() of the batch; 0 in mmap mode, where
	// appenders copied their records into the mapping directly.
	Write time.Duration
	// Sync is the durability barrier (fsync/msync); 0 when the flush
	// needed no barrier under the store's sync policy.
	Sync time.Duration
}

// Instrumented is the optional instrumentation side of a SessionStore.
// SetInstrumenter must be called before the store is used concurrently
// (the server attaches telemetry while opening the manager, before it
// serves traffic); passing nil detaches. Both built-in backends
// implement it.
type Instrumented interface {
	SetInstrumenter(Instrumenter)
}

// Health is a point-in-time snapshot of a store's internal counters, for
// surfacing in operational endpoints (the server exposes it in /v1/stats).
type Health struct {
	// Backend names the implementation: "mem" or "wal".
	Backend string `json:"backend"`
	// Appends counts successful Append calls since open.
	Appends uint64 `json:"appends"`
	// AppendedBytes counts record bytes written by Append since open.
	AppendedBytes uint64 `json:"appendedBytes"`
	// Flushes counts physical journal writes since open. Under group
	// commit many concurrent appends coalesce into one flush, so
	// Appends/Flushes is the realized batching ratio (1.0 means no
	// coalescing happened).
	Flushes uint64 `json:"flushes,omitempty"`
	// Syncs counts fsync calls since open.
	Syncs uint64 `json:"syncs"`
	// Failures counts Append/Snapshot/sync errors since open.
	Failures uint64 `json:"failures"`
	// LastError is the most recent failure, "" when none.
	LastError string `json:"lastError,omitempty"`
	// Snapshots counts successful Snapshot calls since open.
	Snapshots uint64 `json:"snapshots"`
	// SnapshotEvents is the event count of the latest snapshot.
	SnapshotEvents uint64 `json:"snapshotEvents"`
	// RecoveredEvents is how many events Recover replayed at open.
	RecoveredEvents uint64 `json:"recoveredEvents"`
	// TruncatedTail reports that recovery found and dropped a torn final
	// record (the expected signature of a crash mid-append).
	TruncatedTail bool `json:"truncatedTail,omitempty"`
	// DroppedBytes is how many trailing journal bytes recovery discarded.
	DroppedBytes uint64 `json:"droppedBytes,omitempty"`
	// JournalBytes is the current size of the active journal segment.
	JournalBytes uint64 `json:"journalBytes"`
	// Generation is the active journal segment's generation number.
	Generation uint64 `json:"generation"`
	// SnapshotGeneration is the latest published snapshot's generation, 0
	// when none exists yet. It trails Generation while a two-phase snapshot
	// is between rotation and commit, or after a failed commit.
	SnapshotGeneration uint64 `json:"snapshotGeneration,omitempty"`
	// Segments is the number of live journal segments. More than one means
	// recovery will replay a multi-segment chain (the expected state between
	// a rotation and its commit; persistent growth means snapshots are
	// failing).
	Segments int `json:"segments,omitempty"`
	// Mmap reports that the journal appends through a memory-mapped
	// segment (the fast path) rather than write() calls. Durability is
	// identical; with mmap, Flushes counts sync barriers rather than
	// physical writes.
	Mmap bool `json:"mmap,omitempty"`
	// Broken reports that the store has entered a failed state it cannot
	// recover from without a restart (for the WAL: the journal offset is
	// unknown after a failed rollback) and is refusing writes. A broken
	// store is unhealthy — the server's /healthz degrades on it.
	Broken bool `json:"broken,omitempty"`
}

// Healther is the optional health-reporting side of a SessionStore. Both
// built-in backends implement it.
type Healther interface {
	Health() Health
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")
