package store

// Group-commit tests: the WAL coalesces concurrent appends into single
// flushes, but the contract every caller relies on is unchanged — an
// Append that returned nil is on disk (journal-before-response), events
// hit the journal in arrival order, and an AppendBatch is atomic on
// recovery. These tests pin each of those properties plus the coalescing
// itself.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// forEachWALMode runs fn in mmap mode (where supported) and in the
// write()-path fallback, so both journaling implementations keep the same
// guarantees.
func forEachWALMode(t *testing.T, fn func(t *testing.T, cfg WALConfig)) {
	t.Run("mmap", func(t *testing.T) {
		fn(t, WALConfig{})
	})
	t.Run("write", func(t *testing.T) {
		fn(t, WALConfig{DisableMmap: true})
	})
}

// TestWALAppendBatchRoundTrip: a multi-event AppendBatch recovers as the
// same events in the same order, interleaved correctly with plain appends.
func TestWALAppendBatchRoundTrip(t *testing.T) {
	forEachWALMode(t, testWALAppendBatchRoundTrip)
}

func testWALAppendBatchRoundTrip(t *testing.T, cfg WALConfig) {
	dir := t.TempDir()
	cfg.Dir, cfg.Sync = dir, SyncNone
	w, err := NewWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: 1, ID: "before", Data: []byte("a")},
		{Kind: 2, ID: "b1", Data: []byte("x")},
		{Kind: 3, ID: "b2"},
		{Kind: 4, ID: "b3", Data: []byte("zz")},
		{Kind: 1, ID: "after"},
	}
	if err := w.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(want[1:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	if err := w.AppendBatch(want[4:5]); err != nil { // single-event batch = plain append
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	if h := r.Health(); h.RecoveredEvents != uint64(len(want)) {
		t.Fatalf("health reports %d recovered events, want %d", h.RecoveredEvents, len(want))
	}
}

// TestWALAppendBatchAtomicOnTornTail: a batch frame torn mid-record drops
// WHOLE — no sub-event of it replays — while everything before it survives.
// This is what makes a multi-event transition crash-atomic.
func TestWALAppendBatchAtomicOnTornTail(t *testing.T) {
	forEachWALMode(t, testWALAppendBatchAtomicOnTornTail)
}

func testWALAppendBatchAtomicOnTornTail(t *testing.T, cfg WALConfig) {
	dir := t.TempDir()
	cfg.Dir, cfg.Sync = dir, SyncNone
	w, err := NewWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Kind: 1, ID: "keep", Data: []byte("k")}); err != nil {
		t.Fatal(err)
	}
	keptLen := int64(w.walBytes)
	batch := []Event{
		{Kind: 2, ID: "t1", Data: []byte("1")},
		{Kind: 2, ID: "t2", Data: []byte("2")},
		{Kind: 2, ID: "t3", Data: []byte("3")},
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	path := walPath(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the batch record at every byte offset inside it: whatever a
	// crash leaves behind, either the whole batch replays (untorn) or none
	// of it does.
	for cut := keptLen; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got, err := r.Recover()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0].ID != "keep" {
			t.Fatalf("cut %d: recovered %+v, want only the pre-batch event", cut, got)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// Recovery truncated the torn frame; restore the full file for the
		// next cut.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALGroupCommitDurableBeforeReturn: under heavy concurrency, the
// moment any Append returns its record is readable from the journal file —
// the journal-before-response invariant survives coalescing. Each goroutine
// re-reads the file right after its own Append returns and must find its
// event in the valid prefix.
func TestWALGroupCommitDurableBeforeReturn(t *testing.T) {
	forEachWALMode(t, testWALGroupCommitDurableBeforeReturn)
}

func testWALGroupCommitDurableBeforeReturn(t *testing.T, cfg WALConfig) {
	dir := t.TempDir()
	cfg.Dir, cfg.Sync = dir, SyncInterval
	w, err := NewWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	path := walPath(t, w)
	const goroutines, per = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				if err := w.Append(Event{Kind: 1, ID: id}); err != nil {
					errc <- err
					return
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					errc <- err
					return
				}
				// Concurrent flushes may leave a torn suffix mid-read; our
				// event was flushed before Append returned, so it is in the
				// valid prefix regardless.
				events, _, _ := decodeAll(raw)
				found := false
				for _, ev := range events {
					if ev.ID == id {
						found = true
						break
					}
				}
				if !found {
					errc <- fmt.Errorf("event %s acknowledged but not on disk", id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestWALGroupCommitOrdering: per-appender order survives coalescing — a
// goroutine's later events never land before its earlier ones, across
// batch boundaries.
func TestWALGroupCommitOrdering(t *testing.T) {
	forEachWALMode(t, testWALGroupCommitOrdering)
}

func testWALGroupCommitOrdering(t *testing.T, cfg WALConfig) {
	dir := t.TempDir()
	cfg.Dir, cfg.Sync = dir, SyncNone
	w, err := NewWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev := Event{Kind: 1, ID: fmt.Sprintf("g%d", g), Data: binary.AppendUvarint(nil, uint64(i))}
				if err := w.Append(ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	events, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != goroutines*per {
		t.Fatalf("recovered %d events, want %d", len(events), goroutines*per)
	}
	next := make(map[string]uint64)
	for _, ev := range events {
		seq, _ := binary.Uvarint(ev.Data)
		if seq != next[ev.ID] {
			t.Fatalf("appender %s: journal shows sequence %d where %d was expected", ev.ID, seq, next[ev.ID])
		}
		next[ev.ID]++
	}
}

// TestWALGroupCommitCoalesces: with a commit window, concurrent appenders
// share flushes — Health.Flushes stays well below Health.Appends, which is
// the whole point of group commit. Runs in write() mode, where every
// append needs a flush; in mmap mode interval-sync appends have no flush
// to share at all (see TestWALMmapSyncAlwaysCoalesces).
func TestWALGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWAL(WALConfig{Dir: dir, Sync: SyncInterval, CommitWindow: 2 * time.Millisecond, DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(Event{Kind: 1, ID: fmt.Sprintf("g%d-%d", g, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h := w.Health()
	if h.Appends != goroutines*per {
		t.Fatalf("appends %d, want %d", h.Appends, goroutines*per)
	}
	if h.Flushes == 0 || h.Flushes >= h.Appends {
		t.Fatalf("flushes %d of %d appends: no coalescing happened", h.Flushes, h.Appends)
	}
}

// TestWALMmapSyncAlwaysCoalesces: in mmap mode the only flush work is the
// SyncAlways msync barrier, and concurrent appenders share it the same way
// write()-mode appenders share writes.
func TestWALMmapSyncAlwaysCoalesces(t *testing.T) {
	w, err := NewWAL(WALConfig{Dir: t.TempDir(), Sync: SyncAlways, CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if h := w.Health(); !h.Mmap {
		t.Skip("mmap journaling unavailable on this platform/filesystem")
	}
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(Event{Kind: 1, ID: fmt.Sprintf("g%d-%d", g, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h := w.Health()
	if h.Appends != goroutines*per {
		t.Fatalf("appends %d, want %d", h.Appends, goroutines*per)
	}
	if h.Syncs == 0 || h.Syncs >= h.Appends {
		t.Fatalf("syncs %d of %d appends: msync barrier not shared", h.Syncs, h.Appends)
	}
}

// TestWALGroupCommitUnderRotation: appends racing a snapshot rotation
// neither deadlock nor lose acknowledged events — everything acknowledged
// after the last Commit's cut is recovered (the baseline replays the
// snapshot state, the newer segments replay the rest).
func TestWALGroupCommitUnderRotation(t *testing.T) {
	forEachWALMode(t, testWALGroupCommitUnderRotation)
}

func testWALGroupCommitUnderRotation(t *testing.T, cfg WALConfig) {
	dir := t.TempDir()
	cfg.Dir, cfg.Sync = dir, SyncNone
	w, err := NewWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 4, 100
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			rot, err := w.Rotate()
			if err != nil {
				continue
			}
			// Commit an empty baseline: every acknowledged event then lives
			// in the journal segments at or after the new generation.
			if err := rot.Commit(nil); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var ev Event
				ev.Kind = 1
				ev.ID = fmt.Sprintf("g%d-%d", g, i)
				var err error
				if i%10 == 9 {
					err = w.AppendBatch([]Event{ev, {Kind: 2, ID: ev.ID + "-b"}})
				} else {
					err = w.Append(ev)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	events, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The concurrent snapshots committed empty baselines, discarding events
	// appended before their rotation cut: only completeness since the final
	// cut is checkable here. What must hold unconditionally is that the
	// chain recovers cleanly and every surviving appender-sequence is a
	// gap-free suffix of what that appender wrote.
	lastSeq := make(map[int]int)
	for _, ev := range events {
		var g, i int
		id := ev.ID
		if n := len(id); n > 2 && id[n-2] == '-' && id[n-1] == 'b' {
			continue // batch companion event
		}
		if _, err := fmt.Sscanf(id, "g%d-%d", &g, &i); err != nil {
			t.Fatalf("unexpected event id %q", id)
		}
		if prev, seen := lastSeq[g]; seen && i != prev+1 {
			t.Fatalf("appender %d: sequence gap %d -> %d in recovered suffix", g, prev, i)
		}
		lastSeq[g] = i
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALMmapGrowthUnderConcurrency shrinks the mapping chunk so the
// segment must regrow many times while SyncAlways appenders race the
// msync leader — the reserve/grow/flush interleaving that could corrupt
// offsets if a waiter used a stale one. Every event must recover intact
// and in per-appender order.
func TestWALMmapGrowthUnderConcurrency(t *testing.T) {
	oldChunk := mmapChunk
	mmapChunk = 4096
	defer func() { mmapChunk = oldChunk }()
	dir := t.TempDir()
	w, err := NewWAL(WALConfig{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if h := w.Health(); !h.Mmap {
		_ = w.Close()
		t.Skip("mmap journaling unavailable on this platform/filesystem")
	}
	const goroutines, per = 8, 60
	payload := make([]byte, 97) // a few records per 4k chunk
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev := Event{Kind: 1, ID: fmt.Sprintf("g%d", g), Data: append(binary.AppendUvarint(nil, uint64(i)), payload...)}
				if err := w.Append(ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewWAL(WALConfig{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	events, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != goroutines*per {
		t.Fatalf("recovered %d events, want %d", len(events), goroutines*per)
	}
	next := make(map[string]uint64)
	for _, ev := range events {
		seq, _ := binary.Uvarint(ev.Data)
		if seq != next[ev.ID] {
			t.Fatalf("appender %s: sequence %d where %d expected (offset corruption?)", ev.ID, seq, next[ev.ID])
		}
		next[ev.ID]++
	}
}

// TestWALAppendBatchRejectsReservedKinds: the batch frame kind and kind 0
// cannot be smuggled in through AppendBatch.
func TestWALAppendBatchRejectsReservedKinds(t *testing.T) {
	w, err := NewWAL(WALConfig{Dir: t.TempDir(), Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, kind := range []byte{0, batchKind} {
		evs := []Event{{Kind: 1, ID: "ok"}, {Kind: kind, ID: "bad"}}
		if err := w.AppendBatch(evs); err == nil {
			t.Fatalf("batch with reserved kind %d accepted", kind)
		}
	}
	// The failed batch must not have left half a frame behind: a following
	// append and recovery stay clean.
	if err := w.Append(Event{Kind: 1, ID: "after"}); err != nil {
		t.Fatal(err)
	}
	if h := w.Health(); h.Appends != 1 {
		t.Fatalf("appends %d after rejected batches, want 1", h.Appends)
	}
}

// TestWALCommitWindowValidation: a negative window is a config error.
func TestWALCommitWindowValidation(t *testing.T) {
	if _, err := NewWAL(WALConfig{Dir: t.TempDir(), CommitWindow: -time.Second}); err == nil {
		t.Fatal("negative commit window accepted")
	}
}

// TestMemAppendBatch: the no-op backend counts batched events too.
func TestMemAppendBatch(t *testing.T) {
	m := NewMem()
	if err := AppendAll(m, []Event{{Kind: 1, ID: "a"}, {Kind: 2, ID: "b"}}); err != nil {
		t.Fatal(err)
	}
	if h := m.Health(); h.Appends != 2 {
		t.Fatalf("appends %d, want 2", h.Appends)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBatch([]Event{{Kind: 1, ID: "x"}}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
