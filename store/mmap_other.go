//go:build !linux

package store

// Stub for platforms without the mmap fast path: the WAL uses write()
// journaling everywhere (see mmap_linux.go for the real implementation).

import (
	"errors"
	"os"
)

const mmapSupported = false

var mmapChunk = int64(4 << 20)

type mmapRegion struct{}

func (r *mmapRegion) active() bool { return false }

func mapSegment(*os.File, int64) (mmapRegion, error) {
	return mmapRegion{}, errors.New("store: mmap journaling is not supported on this platform")
}

func (r *mmapRegion) sync() error  { return nil }
func (r *mmapRegion) unmap() error { return nil }
